//! Accelerator configuration: the Stage 3 parameters, a validating
//! builder, and the typed errors the builder reports.
//!
//! [`AcceleratorConfig`] remains a plain-old-data struct (every field is
//! public, and `Default` reproduces the paper's operating point), but the
//! preferred construction path is the builder:
//!
//! ```
//! use tapas_sim::{AcceleratorConfig, ProfileLevel};
//!
//! let cfg = AcceleratorConfig::builder()
//!     .tiles(4)
//!     .cache_kib(16)
//!     .profile(ProfileLevel::Summary)
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.ntiles, 4);
//! ```
//!
//! The builder front-loads the geometry mistakes that previously surfaced
//! as panics deep inside elaboration (zero tiles, a non-power-of-two cache,
//! a zero-depth data-box queue) into a typed [`ConfigError`].

use crate::fault::{FaultPlan, FaultTolerance};
use crate::profile::ProfileLevel;
use std::collections::HashMap;
use std::path::PathBuf;
use tapas_dfg::LatencyModel;
use tapas_mem::{CacheConfig, DataBoxConfig, DramConfig};

/// Configuration of the elaborated accelerator (the paper's Stage 3
/// parameters: queue depths, tiles per task, memory system).
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Task queue entries per task unit (`Ntasks`).
    pub ntasks: usize,
    /// Default TXU tiles per task unit (`Ntiles`).
    pub ntiles: usize,
    /// Per-task tile overrides, keyed by task name (e.g. `"dedup::task2"`).
    pub tile_overrides: HashMap<String, usize>,
    /// Shared L1 cache parameters.
    pub cache: CacheConfig,
    /// Optional L2 between the L1 and DRAM (the §VI cache-hierarchy
    /// improvement; `None` reproduces the paper's released memory system).
    pub l2: Option<CacheConfig>,
    /// DRAM/AXI parameters.
    pub dram: DramConfig,
    /// Data box issue width and queue depth (ports are sized automatically).
    pub databox: DataBoxConfig,
    /// Functional-unit latencies.
    pub latencies: LatencyModel,
    /// Cycles for the spawn handshake (queue allocation + args write).
    pub spawn_cost: u64,
    /// Cycles to resume from a sync join.
    pub sync_cost: u64,
    /// Cycles between successive block dataflows of one instance.
    pub block_transition: u64,
    /// Accelerator memory size in bytes.
    pub mem_bytes: usize,
    /// Abort the simulation after this many cycles.
    pub max_cycles: u64,
    /// Record a task-level event trace (spawn/dispatch/suspend/complete),
    /// retrievable with [`Accelerator::take_events`](crate::Accelerator).
    /// Off by default — long runs generate many events.
    pub record_events: bool,
    /// Cycle-attribution profiling level. [`ProfileLevel::Off`] (the
    /// default) adds no per-cycle work to the engine loop; higher levels
    /// attach a [`Profile`](crate::Profile) to the
    /// [`SimOutcome`](crate::SimOutcome).
    pub profile: ProfileLevel,
    /// Write a Chrome `chrome://tracing` event trace to this path at the
    /// end of every run. Implies event recording.
    pub trace_path: Option<PathBuf>,
    /// Deterministic fault-injection plan. `None` (the default) is the
    /// fault-free fast path: no recovery machinery perturbs the timing.
    pub faults: Option<FaultPlan>,
    /// Recovery mechanisms armed while a fault plan is active (watchdog,
    /// memory retry, ECC, queue parity, tile quarantine).
    pub tolerance: FaultTolerance,
    /// Bounded-resource admission control. `None` (the default) reproduces
    /// the paper's behaviour exactly: a spawn into a full task queue
    /// backpressures the producer and can wedge the design. `Some` arms
    /// the inline-spawn / queue-virtualization / deadlock-recovery paths,
    /// making every legal program terminate on any finite queue geometry.
    pub admission: Option<AdmissionControl>,
    /// Cross-unit work stealing. `None` (the default) reproduces the
    /// paper's placement exactly: a tile only ever dispatches entries from
    /// its own unit's queue. `Some` lets idle tiles claim READY entries
    /// from sibling queues through a steal port (see [`StealConfig`]).
    pub steal: Option<StealConfig>,
    /// Number of address-interleaved L1 banks. `1` (the default) is the
    /// paper's single shared cache, bit-identical to seed; powers of two
    /// above 1 split the L1 into independent banks with per-bank MSHRs so
    /// same-cycle accesses to different banks stop serializing.
    pub l1_banks: usize,
    /// Advance the cycle counter directly to the next component event
    /// instead of stepping through idle cycles (`true`, the default). The
    /// event-driven core is cycle- and stats-identical to stepping — only
    /// wall clock changes (see DESIGN §14 and
    /// [`SimStats::skipped_cycles`](crate::SimStats)) — so `false` exists
    /// for differential testing against the stepped seed schedule, not as
    /// a behavioural knob.
    pub event_driven: bool,
    /// Periodic crash-consistent snapshots. `None` (the default) adds no
    /// work to the engine loop; `Some` writes an
    /// [`EngineSnapshot`](crate::EngineSnapshot) atomically every
    /// [`SnapshotConfig::every`] executed cycles, so a killed process can
    /// [`Accelerator::resume`](crate::Accelerator) mid-simulation with
    /// byte-identical results (see DESIGN §16).
    pub snapshot: Option<SnapshotConfig>,
    /// Test hook: stop the engine after this many executed cycles with
    /// [`SimError::Halted`](crate::SimError), leaving an in-memory
    /// snapshot retrievable via
    /// [`Accelerator::take_halt_snapshot`](crate::Accelerator). This is
    /// how the chaos harness "kills" a run at a deterministic point
    /// without process gymnastics. `None` (the default) never halts.
    pub halt_at_cycle: Option<u64>,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            ntasks: 32,
            ntiles: 1,
            tile_overrides: HashMap::new(),
            cache: CacheConfig::default(),
            l2: None,
            dram: DramConfig::default(),
            databox: DataBoxConfig::default(),
            latencies: LatencyModel::default(),
            spawn_cost: 10,
            sync_cost: 2,
            block_transition: 2,
            mem_bytes: 16 * 1024 * 1024,
            max_cycles: 500_000_000,
            record_events: false,
            profile: ProfileLevel::Off,
            trace_path: None,
            faults: None,
            tolerance: FaultTolerance::default(),
            admission: None,
            steal: None,
            l1_banks: 1,
            event_driven: true,
            snapshot: None,
            halt_at_cycle: None,
        }
    }
}

/// Periodic crash-consistent snapshotting
/// (selected with [`AcceleratorConfigBuilder::snapshot`]).
///
/// The engine captures its complete clocked state every
/// [`SnapshotConfig::every`] executed cycles and publishes it to
/// [`SnapshotConfig::path`] with a write-then-rename, rotating the
/// previous snapshot to `<path>.prev`. See the
/// [`snapshot`](crate::snapshot) module for the format and the restore
/// identity contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// Executed cycles between snapshot writes. Must be at least 1.
    pub every: u64,
    /// Where the snapshot file lives.
    pub path: PathBuf,
}

/// How cross-unit work stealing behaves
/// (selected with [`AcceleratorConfigBuilder::steal`]).
///
/// The paper binds each task queue to one task unit, so recursive
/// workloads leave every tile of a cold unit idle behind one hot queue.
/// With stealing armed, a tile whose own queue has no dispatchable entry
/// probes sibling queues round-robin and claims their **oldest** READY
/// entry, provided the thief tile's memory-port count covers the stolen
/// task's needs. The owner always wins a same-cycle pop/steal race: steal
/// probes run strictly after every unit's own dispatch, so an entry can
/// never dispatch twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Cycles a stolen entry spends in flight over the steal port before
    /// the thief tile can issue its first node (the cost of reading a
    /// remote queue entry and moving its payload).
    pub latency: u64,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig { latency: 4 }
    }
}

/// How the engine responds when a spawn targets a full task queue
/// (selected with [`AcceleratorConfigBuilder::admission`]).
///
/// Three cooperating mechanisms bound live tasks without losing work:
///
/// * **Inline spawn** (Cilk work-first degradation): a task unit that
///   cannot enqueue a child executes the child — and, transitively, its
///   whole subtree — serially on the spawning tile.
/// * **Queue virtualization**: overflow entries spill through the data
///   box into a DRAM-backed overflow arena and refill, oldest first, as
///   queue slots drain.
/// * **Deadlock recovery**: when no component makes progress for
///   [`recovery_window`](AdmissionControl::recovery_window) cycles, the
///   oldest spilled spawn is forced down the inline path, breaking
///   spawn-edge wait-for cycles instead of reporting
///   [`SimError::Deadlock`](crate::SimError).
///
/// The default enables both mechanisms; [`AdmissionControl::work_first`]
/// and [`AdmissionControl::virtualized`] select one apiece.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Execute refused spawns inline on the spawning tile.
    pub inline_spawn: bool,
    /// Spill refused spawns to the DRAM-backed overflow arena.
    pub spill: bool,
    /// Overflow arena capacity in queue entries (one 8-byte tag word of
    /// modeled DRAM per entry).
    pub overflow_entries: usize,
    /// Cycles without progress before deadlock recovery forces the oldest
    /// blocked spawn inline. Must be large enough to never race a legal
    /// quiet period (non-memory stalls are bounded by the spawn/sync/block
    /// handshakes, all well under 100 cycles at the default operating
    /// point).
    pub recovery_window: u64,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            inline_spawn: true,
            spill: true,
            overflow_entries: 4096,
            recovery_window: 1_000,
        }
    }
}

impl AdmissionControl {
    /// Inline-spawn only: refused spawns run serially on the spawning
    /// tile; nothing ever spills.
    pub fn work_first() -> Self {
        AdmissionControl { spill: false, ..AdmissionControl::default() }
    }

    /// Queue virtualization only: refused spawns spill to the overflow
    /// arena. Inline execution still backstops deadlock recovery.
    pub fn virtualized() -> Self {
        AdmissionControl { inline_spawn: false, ..AdmissionControl::default() }
    }
}

impl AcceleratorConfig {
    /// Start building a configuration from the paper's defaults.
    pub fn builder() -> AcceleratorConfigBuilder {
        AcceleratorConfigBuilder { cfg: AcceleratorConfig::default() }
    }

    /// Tiles for the task with the given name.
    pub fn tiles_for(&self, task_name: &str) -> usize {
        self.tile_overrides.get(task_name).copied().unwrap_or(self.ntiles).max(1)
    }

    /// Builder-style override of the tile count for one task.
    pub fn with_tiles(mut self, task_name: &str, tiles: usize) -> Self {
        self.tile_overrides.insert(task_name.to_string(), tiles);
        self
    }

    /// Builder-style setting of the default tile count.
    pub fn with_default_tiles(mut self, tiles: usize) -> Self {
        self.ntiles = tiles;
        self
    }

    /// Whether this configuration is structurally protected against
    /// spawn-queue deadlock: admission control spills instead of letting a
    /// blocked spawn chain wedge a full task unit. The static analyzer's
    /// `check_config` verdict keys off this — unguarded configurations must
    /// additionally satisfy its proven `min_safe_ntasks`.
    pub fn deadlock_guarded(&self) -> bool {
        self.admission.is_some()
    }

    /// Validate the configuration's geometry; [`AcceleratorConfigBuilder::build`]
    /// calls this, and [`Accelerator::elaborate`](crate::Accelerator) relies
    /// on it having held.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ntiles == 0 {
            return Err(ConfigError::ZeroTiles { task: None });
        }
        if let Some((task, _)) = self.tile_overrides.iter().find(|(_, &t)| t == 0) {
            return Err(ConfigError::ZeroTiles { task: Some(task.clone()) });
        }
        if self.ntasks == 0 {
            return Err(ConfigError::ZeroQueueDepth { queue: "task queue (ntasks)" });
        }
        if self.databox.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth { queue: "data box port queue" });
        }
        if self.mem_bytes == 0 {
            return Err(ConfigError::ZeroMemory);
        }
        if self.tolerance.mem_retry && self.tolerance.mem_timeout == 0 {
            return Err(ConfigError::ZeroTimeout { which: "memory retry timeout" });
        }
        if self.tolerance.watchdog_timeout == Some(0) {
            return Err(ConfigError::ZeroTimeout { which: "watchdog timeout" });
        }
        if let Some(a) = &self.admission {
            if !a.inline_spawn && !a.spill {
                return Err(ConfigError::AdmissionWithoutMechanism);
            }
            if a.spill && a.overflow_entries == 0 {
                return Err(ConfigError::ZeroQueueDepth { queue: "admission overflow arena" });
            }
            if a.recovery_window == 0 {
                return Err(ConfigError::ZeroTimeout { which: "admission recovery window" });
            }
        }
        for (label, c) in
            std::iter::once(("L1", &self.cache)).chain(self.l2.as_ref().map(|c| ("L2", c)))
        {
            if !c.size_bytes.is_power_of_two() || c.size_bytes < c.line_bytes {
                return Err(ConfigError::NonPowerOfTwoCache { level: label, bytes: c.size_bytes });
            }
            if c.line_bytes != self.dram.line_bytes {
                return Err(ConfigError::LineMismatch {
                    level: label,
                    cache_line: c.line_bytes,
                    dram_line: self.dram.line_bytes,
                });
            }
        }
        if self.snapshot.as_ref().is_some_and(|s| s.every == 0) {
            return Err(ConfigError::ZeroTimeout { which: "snapshot interval" });
        }
        if !self.l1_banks.is_power_of_two() {
            return Err(ConfigError::BadBankCount { banks: self.l1_banks });
        }
        let per_bank = self.cache.size_bytes / self.l1_banks as u64;
        if per_bank < self.cache.line_bytes * self.cache.ways {
            // Each bank must still hold at least one full set.
            return Err(ConfigError::NonPowerOfTwoCache { level: "L1 bank", bytes: per_bank });
        }
        Ok(())
    }
}

/// A configuration the builder refused to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A tile count of zero (default or per-task override).
    ZeroTiles {
        /// The offending per-task override, or `None` for the default count.
        task: Option<String>,
    },
    /// A queue somewhere in the design has no entries.
    ZeroQueueDepth {
        /// Which queue.
        queue: &'static str,
    },
    /// Cache capacity must be a power of two no smaller than one line.
    NonPowerOfTwoCache {
        /// Which cache level.
        level: &'static str,
        /// The rejected capacity.
        bytes: u64,
    },
    /// Cache line size must match the DRAM burst size.
    LineMismatch {
        /// Which cache level.
        level: &'static str,
        /// The cache's line size in bytes.
        cache_line: u64,
        /// The DRAM burst size in bytes.
        dram_line: u64,
    },
    /// The accelerator has no memory.
    ZeroMemory,
    /// A fault-tolerance timeout of zero would fire before the event it
    /// guards could ever complete.
    ZeroTimeout {
        /// Which timeout.
        which: &'static str,
    },
    /// Admission control was requested with every mechanism disabled —
    /// indistinguishable from plain backpressure, so almost certainly a
    /// configuration mistake.
    AdmissionWithoutMechanism,
    /// The L1 bank count must be a power of two (address interleaving is a
    /// line-index modulus) of at least 1.
    BadBankCount {
        /// The rejected bank count.
        banks: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTiles { task: None } => {
                write!(f, "default tile count must be at least 1")
            }
            ConfigError::ZeroTiles { task: Some(t) } => {
                write!(f, "tile override for task {t:?} must be at least 1")
            }
            ConfigError::ZeroQueueDepth { queue } => {
                write!(f, "{queue} must have at least one entry")
            }
            ConfigError::NonPowerOfTwoCache { level, bytes } => write!(
                f,
                "{level} capacity of {bytes} bytes is not a power of two of at least one line"
            ),
            ConfigError::LineMismatch { level, cache_line, dram_line } => write!(
                f,
                "{level} line size ({cache_line} B) must match the DRAM burst ({dram_line} B)"
            ),
            ConfigError::ZeroMemory => write!(f, "accelerator memory size must be non-zero"),
            ConfigError::ZeroTimeout { which } => {
                write!(f, "{which} must be at least one cycle when its mechanism is enabled")
            }
            ConfigError::AdmissionWithoutMechanism => {
                write!(f, "admission control needs inline spawns, spilling, or both enabled")
            }
            ConfigError::BadBankCount { banks } => {
                write!(f, "L1 bank count of {banks} is not a power of two of at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`AcceleratorConfig`]; obtained from
/// [`AcceleratorConfig::builder`]. Every setter returns `self`;
/// [`AcceleratorConfigBuilder::build`] validates the result.
#[derive(Debug, Clone)]
pub struct AcceleratorConfigBuilder {
    cfg: AcceleratorConfig,
}

impl AcceleratorConfigBuilder {
    /// Default TXU tiles per task unit (`Ntiles`).
    pub fn tiles(mut self, n: usize) -> Self {
        self.cfg.ntiles = n;
        self
    }

    /// Override the tile count for one task by name.
    pub fn tile_override(mut self, task: &str, n: usize) -> Self {
        self.cfg.tile_overrides.insert(task.to_string(), n);
        self
    }

    /// Task queue entries per task unit (`Ntasks`).
    pub fn ntasks(mut self, n: usize) -> Self {
        self.cfg.ntasks = n;
        self
    }

    /// L1 capacity in KiB, keeping the default geometry otherwise.
    pub fn cache_kib(mut self, kib: u64) -> Self {
        self.cfg.cache.size_bytes = kib * 1024;
        self
    }

    /// Full L1 cache parameters.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = cache;
        self
    }

    /// Insert an L2 between the L1 and DRAM.
    pub fn l2(mut self, l2: CacheConfig) -> Self {
        self.cfg.l2 = Some(l2);
        self
    }

    /// DRAM/AXI channel parameters.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.cfg.dram = dram;
        self
    }

    /// Data box issue width and queue depth.
    pub fn databox(mut self, databox: DataBoxConfig) -> Self {
        self.cfg.databox = databox;
        self
    }

    /// Functional-unit latency model.
    pub fn latencies(mut self, latencies: LatencyModel) -> Self {
        self.cfg.latencies = latencies;
        self
    }

    /// Cycles for the spawn handshake.
    pub fn spawn_cost(mut self, cycles: u64) -> Self {
        self.cfg.spawn_cost = cycles;
        self
    }

    /// Cycles to resume from a sync join.
    pub fn sync_cost(mut self, cycles: u64) -> Self {
        self.cfg.sync_cost = cycles;
        self
    }

    /// Cycles between successive block dataflows of one instance.
    pub fn block_transition(mut self, cycles: u64) -> Self {
        self.cfg.block_transition = cycles;
        self
    }

    /// Accelerator memory size in bytes.
    pub fn mem_bytes(mut self, bytes: usize) -> Self {
        self.cfg.mem_bytes = bytes;
        self
    }

    /// Cycle budget.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.cfg.max_cycles = cycles;
        self
    }

    /// Record the task-level event trace.
    pub fn record_events(mut self, on: bool) -> Self {
        self.cfg.record_events = on;
        self
    }

    /// Cycle-attribution profiling level.
    pub fn profile(mut self, level: ProfileLevel) -> Self {
        self.cfg.profile = level;
        self
    }

    /// Write a Chrome trace to this path at the end of every run.
    pub fn trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.trace_path = Some(path.into());
        self
    }

    /// Arm deterministic fault injection with this plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Recovery mechanisms used while faults are injected.
    pub fn tolerance(mut self, tolerance: FaultTolerance) -> Self {
        self.cfg.tolerance = tolerance;
        self
    }

    /// Arm bounded-resource admission control: inline spawn execution,
    /// task-queue spilling, and deadlock recovery (see
    /// [`AdmissionControl`]).
    pub fn admission(mut self, admission: AdmissionControl) -> Self {
        self.cfg.admission = Some(admission);
        self
    }

    /// Arm cross-unit work stealing: idle tiles claim READY entries from
    /// sibling task queues (see [`StealConfig`]).
    pub fn steal(mut self, steal: StealConfig) -> Self {
        self.cfg.steal = Some(steal);
        self
    }

    /// Split the shared L1 into `n` address-interleaved banks with
    /// per-bank MSHRs. `1` keeps the paper's single cache.
    pub fn l1_banks(mut self, n: usize) -> Self {
        self.cfg.l1_banks = n;
        self
    }

    /// Select the engine core: event-driven (`true`, the default — skips
    /// idle cycles, identical timing) or stepped (`false` — executes every
    /// cycle, the seed schedule the differential harness compares against).
    pub fn event_driven(mut self, on: bool) -> Self {
        self.cfg.event_driven = on;
        self
    }

    /// Write a crash-consistent snapshot to `path` every `every` executed
    /// cycles (see [`SnapshotConfig`]).
    pub fn snapshot(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.cfg.snapshot = Some(SnapshotConfig { every, path: path.into() });
        self
    }

    /// Test hook: halt with [`SimError::Halted`](crate::SimError) after
    /// `cycles` executed cycles, capturing an in-memory snapshot — the
    /// chaos harness's deterministic "kill point".
    pub fn halt_at_cycle(mut self, cycles: u64) -> Self {
        self.cfg.halt_at_cycle = Some(cycles);
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the geometry is unusable: zero tiles,
    /// a zero-depth queue, a non-power-of-two cache, a cache/DRAM line-size
    /// mismatch, or zero memory.
    pub fn build(self) -> Result<AcceleratorConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_overrides_apply() {
        let c = AcceleratorConfig::default().with_default_tiles(2).with_tiles("f::task1", 8);
        assert_eq!(c.tiles_for("f::task1"), 8);
        assert_eq!(c.tiles_for("f::root"), 2);
    }

    #[test]
    fn tiles_never_zero() {
        let c = AcceleratorConfig::default().with_tiles("x", 0);
        assert_eq!(c.tiles_for("x"), 1);
    }

    #[test]
    fn builder_defaults_validate() {
        let c = AcceleratorConfig::builder().build().unwrap();
        assert_eq!(c.ntasks, 32);
        assert_eq!(c.profile, ProfileLevel::Off);
    }

    #[test]
    fn builder_rejects_zero_tiles() {
        let err = AcceleratorConfig::builder().tiles(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroTiles { task: None });
        let err = AcceleratorConfig::builder().tile_override("f::task1", 0).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroTiles { task: Some(_) }));
    }

    #[test]
    fn builder_rejects_non_power_of_two_cache() {
        let err = AcceleratorConfig::builder().cache_kib(3).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonPowerOfTwoCache { level: "L1", .. }));
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn builder_rejects_zero_queue_depth() {
        let err = AcceleratorConfig::builder().ntasks(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroQueueDepth { .. }));
        let db = DataBoxConfig { queue_depth: 0, ..DataBoxConfig::default() };
        let err = AcceleratorConfig::builder().databox(db).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroQueueDepth { .. }));
    }

    #[test]
    fn builder_rejects_line_mismatch_and_zero_memory() {
        let bad = CacheConfig { line_bytes: 64, ..CacheConfig::default() };
        let err = AcceleratorConfig::builder().cache(bad).build().unwrap_err();
        assert!(matches!(err, ConfigError::LineMismatch { level: "L1", .. }));
        let err = AcceleratorConfig::builder().mem_bytes(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroMemory);
    }

    #[test]
    fn builder_sets_fault_knobs_and_rejects_zero_timeouts() {
        let c = AcceleratorConfig::builder()
            .faults(FaultPlan::random(7))
            .tolerance(FaultTolerance { max_mem_retries: 2, ..FaultTolerance::default() })
            .build()
            .unwrap();
        assert!(c.faults.as_ref().is_some_and(|p| !p.is_empty()));
        assert_eq!(c.tolerance.max_mem_retries, 2);

        let tol = FaultTolerance { mem_timeout: 0, ..FaultTolerance::default() };
        let err = AcceleratorConfig::builder().tolerance(tol).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroTimeout { which: "memory retry timeout" });

        let tol = FaultTolerance { watchdog_timeout: Some(0), ..FaultTolerance::default() };
        let err = AcceleratorConfig::builder().tolerance(tol).build().unwrap_err();
        assert!(err.to_string().contains("watchdog"));
    }

    #[test]
    fn admission_is_off_by_default_and_builder_arms_it() {
        let c = AcceleratorConfig::builder().build().unwrap();
        assert!(c.admission.is_none(), "seed behaviour unless explicitly requested");
        let c =
            AcceleratorConfig::builder().admission(AdmissionControl::default()).build().unwrap();
        let a = c.admission.unwrap();
        assert!(a.inline_spawn && a.spill);
        assert!(AdmissionControl::work_first().inline_spawn);
        assert!(!AdmissionControl::work_first().spill);
        assert!(AdmissionControl::virtualized().spill);
        assert!(!AdmissionControl::virtualized().inline_spawn);
    }

    #[test]
    fn builder_rejects_degenerate_admission() {
        let none = AdmissionControl { inline_spawn: false, spill: false, ..Default::default() };
        let err = AcceleratorConfig::builder().admission(none).build().unwrap_err();
        assert_eq!(err, ConfigError::AdmissionWithoutMechanism);
        assert!(err.to_string().contains("admission"));

        let empty = AdmissionControl { overflow_entries: 0, ..Default::default() };
        let err = AcceleratorConfig::builder().admission(empty).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroQueueDepth { .. }));

        let hair = AdmissionControl { recovery_window: 0, ..Default::default() };
        let err = AcceleratorConfig::builder().admission(hair).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroTimeout { which: "admission recovery window" });
    }

    #[test]
    fn steal_and_banking_are_off_by_default_and_builder_arms_them() {
        let c = AcceleratorConfig::builder().build().unwrap();
        assert!(c.steal.is_none(), "seed placement unless explicitly requested");
        assert_eq!(c.l1_banks, 1, "seed cache unless explicitly requested");

        let c =
            AcceleratorConfig::builder().steal(StealConfig::default()).l1_banks(4).build().unwrap();
        assert_eq!(c.steal.unwrap().latency, StealConfig::default().latency);
        assert_eq!(c.l1_banks, 4);
    }

    #[test]
    fn builder_rejects_degenerate_banking() {
        let err = AcceleratorConfig::builder().l1_banks(0).build().unwrap_err();
        assert_eq!(err, ConfigError::BadBankCount { banks: 0 });
        let err = AcceleratorConfig::builder().l1_banks(3).build().unwrap_err();
        assert!(err.to_string().contains("bank count"));
        // 16 KiB / 512 banks = 32 B per bank — less than one 2-way set.
        let err = AcceleratorConfig::builder().l1_banks(512).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonPowerOfTwoCache { level: "L1 bank", .. }));
    }

    #[test]
    fn event_driven_core_is_the_default_and_builder_can_step() {
        let c = AcceleratorConfig::builder().build().unwrap();
        assert!(c.event_driven, "event-driven core is the default engine");
        let c = AcceleratorConfig::builder().event_driven(false).build().unwrap();
        assert!(!c.event_driven);
    }

    #[test]
    fn snapshotting_is_off_by_default_and_builder_arms_it() {
        let c = AcceleratorConfig::builder().build().unwrap();
        assert!(c.snapshot.is_none(), "no snapshot work unless explicitly requested");
        assert!(c.halt_at_cycle.is_none());

        let c = AcceleratorConfig::builder()
            .snapshot("/tmp/e.snap", 1000)
            .halt_at_cycle(500)
            .build()
            .unwrap();
        let s = c.snapshot.unwrap();
        assert_eq!(s.every, 1000);
        assert_eq!(s.path, PathBuf::from("/tmp/e.snap"));
        assert_eq!(c.halt_at_cycle, Some(500));
    }

    #[test]
    fn builder_rejects_zero_snapshot_interval() {
        let err = AcceleratorConfig::builder().snapshot("/tmp/e.snap", 0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroTimeout { which: "snapshot interval" });
        assert!(err.to_string().contains("snapshot interval"));
    }

    #[test]
    fn builder_sets_observability_knobs() {
        let c = AcceleratorConfig::builder()
            .tiles(4)
            .cache_kib(16)
            .profile(ProfileLevel::Full)
            .trace_path("/tmp/t.json")
            .build()
            .unwrap();
        assert_eq!(c.ntiles, 4);
        assert_eq!(c.cache.size_bytes, 16 * 1024);
        assert_eq!(c.profile, ProfileLevel::Full);
        assert!(c.trace_path.is_some());
    }
}
