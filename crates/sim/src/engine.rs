//! The accelerator execution engine: task units, queues, tiles, and the
//! top-level cycle loop.

use crate::fault::{
    BlockedTask, DeadlockDiagnosis, FaultRt, RespFault, UnitWaitState, WaitCause, WaitEdge,
    WaitKind,
};
use crate::profile::{NodeClass, Profile, ProfileLevel, QueueSummary, StallReason, TileProfile};
use crate::snapshot::{Dec, Enc, EngineSnapshot, SnapshotError};
use crate::AcceleratorConfig;
use std::collections::HashMap;
use std::rc::Rc;
use tapas_dfg::{lower_tasks, DfgNode, NodeOp, Operand, TaskDfg, TermInfo};
use tapas_ir::interp::{eval_bin, eval_cmp, eval_fbin, eval_fcmp, sign_extend, Val};
use tapas_ir::{
    mask_to_width, BlockId, CastKind, Constant, FuncId, Function, Module, Type, ValueId,
};
use tapas_mem::{
    AccessOutcome, CacheState, CacheStats, DataBox, DataBoxConfig, DataBoxState, DramState,
    GrantClass, MemError, MemOpKind, MemReq, MemResp, MemSystem, MemSystemState, ReqId,
};
use tapas_task::extract_module;
use tapas_task::queue::{QueueOccupancy, QueueOccupancyState};
use tapas_task::steal::{StealPort, StealPortState};

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Task extraction or DFG lowering failed.
    Elaborate(String),
    /// The cycle budget was exhausted.
    CycleLimit(u64),
    /// Integer division by zero in a TXU.
    DivByZero,
    /// The invoked function's root queue had no free entry.
    QueueFull,
    /// No component made progress for a long window. The payload reports
    /// what the design was actually stuck on: the wait-for cycle between
    /// task units, per-unit queue occupancy, and the oldest blocked task's
    /// `(SID, DyID)`.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        at: u64,
        /// What the wait-for-graph diagnoser found.
        diagnosis: Box<DeadlockDiagnosis>,
    },
    /// A per-unit watchdog fired: one tile made no progress for the
    /// configured window (see
    /// [`FaultTolerance::watchdog_timeout`](crate::FaultTolerance)).
    WatchdogTimeout {
        /// Name of the stuck task unit.
        unit: String,
        /// The stuck tile.
        tile: usize,
        /// Cycle the watchdog fired.
        at: u64,
        /// What the tile was waiting on.
        waiting_on: WaitCause,
    },
    /// A memory request was retried
    /// [`max_mem_retries`](crate::FaultTolerance::max_mem_retries) times
    /// without ever receiving a response.
    MemRetryExhausted {
        /// Name of the issuing task unit.
        unit: String,
        /// The issuing tile.
        tile: usize,
        /// Byte address of the access.
        addr: u64,
        /// Retries attempted.
        attempts: u32,
    },
    /// Queue-RAM parity detected a corrupted entry at dispatch.
    QueueParity {
        /// Name of the task unit whose queue is corrupted.
        unit: String,
        /// The corrupted slot (the `DyID`).
        slot: usize,
    },
    /// Quarantine would fence a unit's last healthy tile: the unit cannot
    /// degrade any further.
    AllTilesFailed {
        /// Name of the fully degraded task unit.
        unit: String,
    },
    /// The memory system refused a malformed request (out of bounds,
    /// misaligned or a bad size).
    Memory {
        /// Name of the issuing task unit, when the request could be
        /// attributed.
        unit: Option<String>,
        /// The issuing tile, when attributable.
        tile: Option<usize>,
        /// Why the request was refused.
        fault: MemError,
    },
    /// A dataflow construct the engine cannot execute.
    Unsupported(String),
    /// Writing the Chrome event trace to
    /// [`AcceleratorConfig::trace_path`](crate::AcceleratorConfig) failed.
    Trace(String),
    /// The run stopped at the
    /// [`halt_at_cycle`](crate::AcceleratorConfig::halt_at_cycle) test
    /// hook — not a failure: an in-memory snapshot of the halted state is
    /// waiting in [`Accelerator::take_halt_snapshot`], and
    /// [`Accelerator::resume`] continues the run from it.
    Halted {
        /// Absolute engine cycle at the halt boundary.
        at: u64,
    },
    /// Capturing, writing or restoring an engine snapshot failed (see
    /// [`crate::snapshot`]).
    Snapshot(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Elaborate(s) => write!(f, "elaboration failed: {s}"),
            SimError::CycleLimit(n) => write!(f, "cycle limit of {n} exceeded"),
            SimError::DivByZero => write!(f, "division by zero"),
            SimError::QueueFull => write!(f, "root task queue full"),
            SimError::Deadlock { at, diagnosis } => {
                write!(f, "deadlock at cycle {at}: {diagnosis}")
            }
            SimError::WatchdogTimeout { unit, tile, at, waiting_on } => write!(
                f,
                "watchdog timeout at cycle {at}: unit {unit} tile {tile} stuck on {waiting_on}"
            ),
            SimError::MemRetryExhausted { unit, tile, addr, attempts } => write!(
                f,
                "memory retry exhausted: unit {unit} tile {tile} got no response for \
                 {addr:#x} after {attempts} retries"
            ),
            SimError::QueueParity { unit, slot } => {
                write!(f, "queue-RAM parity error in unit {unit} slot {slot}")
            }
            SimError::AllTilesFailed { unit } => {
                write!(f, "every tile of unit {unit} exceeded its fault budget")
            }
            SimError::Memory { unit, tile, fault } => {
                write!(f, "memory fault")?;
                if let Some(u) = unit {
                    write!(f, " from unit {u}")?;
                }
                if let Some(t) = tile {
                    write!(f, " tile {t}")?;
                }
                write!(f, ": {fault}")
            }
            SimError::Unsupported(s) => write!(f, "unsupported: {s}"),
            SimError::Trace(s) => write!(f, "writing the event trace failed: {s}"),
            SimError::Halted { at } => {
                write!(f, "halted at cycle {at} by the halt_at_cycle test hook")
            }
            SimError::Snapshot(s) => write!(f, "snapshot failed: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A task-level trace event (recorded when
/// [`AcceleratorConfig::record_events`](crate::AcceleratorConfig) is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// Cycle of the event.
    pub cycle: u64,
    /// Task unit index (see [`Accelerator::unit_names`]).
    pub unit: usize,
    /// Queue slot (the `DyID`).
    pub slot: usize,
    /// What happened.
    pub kind: SimEventKind,
}

/// Kinds of task-level events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// Entry allocated in the task queue (spawn accepted).
    Spawned {
        /// The spawning parent's `(unit, slot)`, when spawned by a
        /// `detach` (the paper's `ParentID`); `None` for host invocations
        /// and call-bridged spawns.
        parent: Option<(usize, usize)>,
    },
    /// Instance dispatched to a tile.
    Dispatched {
        /// The tile it landed on.
        tile: usize,
    },
    /// Instance parked waiting on its children (`SYNC` state).
    SyncWait,
    /// Instance parked waiting on a serial call's completion.
    CallWait,
    /// Instance completed and its slot freed.
    Completed,
    /// A memory request from this instance missed in the cache.
    CacheMiss {
        /// The missing address.
        addr: u64,
    },
    /// The entry was claimed by an idle tile of another unit through the
    /// cross-unit steal port (recorded on the owning unit, immediately
    /// before the matching [`SimEventKind::Dispatched`]).
    Stolen {
        /// The thief's unit index.
        by: usize,
        /// The thief tile the entry executes on.
        tile: usize,
    },
}

/// Per-task-unit counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Task unit (= task) name.
    pub name: String,
    /// Tile count configured for this unit.
    pub tiles: usize,
    /// Dynamic task instances completed.
    pub tasks_executed: u64,
    /// Sum over cycles of busy tiles.
    pub busy_tile_cycles: u64,
    /// Cycles a detach stalled because this unit's queue was full.
    pub spawn_stalls: u64,
    /// Peak queue occupancy observed.
    pub queue_peak: usize,
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Dynamic `detach`s executed (tasks spawned).
    pub spawns: u64,
    /// Dynamic serial calls bridged through task spawns.
    pub calls: u64,
    /// Sum of (first-dispatch − spawn) latencies. Under load this
    /// includes queueing delay, so the §V-A "lightweight spawn" number is
    /// `min_spawn_latency`.
    pub total_spawn_latency: u64,
    /// Minimum observed spawn-to-dispatch latency (the uncontended spawn
    /// overhead of §V-A); `None` when nothing was spawned via `detach`.
    pub min_spawn_latency: Option<u64>,
    /// Per-unit counters.
    pub units: Vec<UnitStats>,
    /// Cache counters at the end of the run.
    pub cache: tapas_mem::CacheStats,
    /// DRAM line reads.
    pub dram_reads: u64,
    /// DRAM line writebacks.
    pub dram_writes: u64,
    /// Data box counters.
    pub databox_issued: u64,
    /// Requests the cache refused (MSHR pressure), i.e. memory stalls.
    pub cache_stalls: u64,
    /// Grants deferred because their L1 bank already granted this cycle
    /// (always 0 with a single bank).
    pub bank_conflicts: u64,
    /// Memory requests re-arbitrated after a response timeout (dropped or
    /// overdue grants).
    pub mem_retries: u64,
    /// Corrupted responses ECC caught and converted into retries.
    pub ecc_retries: u64,
    /// Responses with no matching outstanding request (duplicated grants,
    /// or late originals already superseded by a retry) — detected and
    /// discarded.
    pub spurious_responses: u64,
    /// Faults the injection plan actually delivered this run.
    pub faults_injected: u64,
    /// Tiles fenced off by quarantine.
    pub quarantined_tiles: u64,
    /// Task-queue entries spilled to the DRAM-backed overflow arena
    /// (admission control's queue virtualization).
    pub spills: u64,
    /// Spilled entries refilled into a task queue as slots drained.
    pub refills: u64,
    /// Refused spawns executed inline on the spawning tile (work-first
    /// degradation), including deadlock-recovery forced inlines.
    pub inline_spawns: u64,
    /// READY entries claimed from sibling queues through the cross-unit
    /// steal port (always 0 with stealing disabled).
    pub steals: u64,
    /// Steal probe rounds that found no eligible entry in any victim
    /// (always 0 with stealing disabled).
    pub steal_fail: u64,
    /// Idle cycles the event-driven core advanced over without executing
    /// an engine iteration (0 when
    /// [`AcceleratorConfig::event_driven`](crate::AcceleratorConfig) is
    /// off, or when a fault plan forces per-cycle stepping). Every skipped
    /// cycle still counts in [`SimStats::cycles`] and is attributed to the
    /// profiler's stall buckets.
    pub skipped_cycles: u64,
    /// Engine-loop iterations actually executed. The accounting invariant
    /// `cycles == engine_events + skipped_cycles` holds on every completed
    /// run; `cycles / engine_events` is the event-driven core's speedup
    /// over stepping.
    pub engine_events: u64,
}

impl SimStats {
    /// Mean spawn-to-dispatch latency in cycles (the paper's ~10-cycle
    /// lightweight-task claim).
    pub fn avg_spawn_latency(&self) -> f64 {
        if self.spawns == 0 {
            0.0
        } else {
            self.total_spawn_latency as f64 / self.spawns as f64
        }
    }
}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Return value of the invoked function.
    pub ret: Option<Val>,
    /// Cycles from invocation to completion.
    pub cycles: u64,
    /// Full statistics.
    pub stats: SimStats,
    /// Cycle-attribution profile; present when
    /// [`AcceleratorConfig::profile`](crate::AcceleratorConfig) is not
    /// [`ProfileLevel::Off`].
    pub profile: Option<Profile>,
}

#[derive(Debug, Clone)]
struct NodeState {
    issued: bool,
    done_at: u64,
    value: Option<Val>,
}

impl NodeState {
    fn fresh() -> Self {
        NodeState { issued: false, done_at: u64::MAX, value: None }
    }

    fn done(&self, now: u64) -> bool {
        self.issued && self.done_at <= now
    }
}

/// A task instance's dataflow context (lives on a tile while executing, or
/// saved in its queue entry while waiting on a sync or call).
#[derive(Debug, Clone)]
struct Exec {
    slot: usize,
    /// The unit owning the queue entry this instance was dispatched from.
    /// Equal to the executing tile's unit except for stolen instances,
    /// whose queue bookkeeping (entry, join counters, completion) stays
    /// with the victim while the datapath runs on the thief's tile.
    home: usize,
    block_idx: usize,
    prev_block: Option<BlockId>,
    block_start: u64,
    /// The steal port is still moving this instance's payload until this
    /// cycle (0 for ordinary dispatches); profiled as `steal-stall`.
    steal_until: u64,
    nodes: Vec<NodeState>,
    env: HashMap<ValueId, Val>,
    /// When resuming from a sync, enter this block instead of continuing.
    resume_block: Option<BlockId>,
}

#[derive(Debug)]
struct QueueEntry {
    args: Vec<Val>,
    /// Spawning parent: `(unit, slot)` — the paper's `ParentID (SID, DyID)`.
    parent: Option<(usize, usize)>,
    /// Serial-call origin: deliver the return value to this node and
    /// resume that instance.
    call_ret: Option<CallRet>,
    /// Outstanding children (the `C#` join counter).
    children: u32,
    waiting_sync: bool,
    saved: Option<Box<Exec>>,
    ready_at: u64,
    spawned_at: u64,
    dispatched_once: bool,
    host: bool,
    via_detach: bool,
    /// Queue-RAM parity mismatch injected on this entry; detected at
    /// dispatch when parity checking is enabled.
    poisoned: bool,
}

#[derive(Debug, Clone, Copy)]
struct CallRet {
    unit: usize,
    slot: usize,
    node: usize,
}

/// One TXU tile plus its fault-tolerance state. Fault-free runs leave the
/// extra fields at their defaults, so the engine behaves exactly as if
/// the tile were a bare `Option<Exec>`.
#[derive(Debug, Default)]
struct Tile {
    exec: Option<Exec>,
    /// The tile is executing a refused spawn inline until this cycle
    /// (admission control); always 0 when admission is off.
    inline_busy_until: u64,
    /// Fenced off by quarantine; never dispatched to again.
    fenced: bool,
    /// Frozen until this cycle by an injected stall (`u64::MAX` = wedged).
    stall_until: u64,
    /// Injected faults absorbed so far (quarantine fences past the budget).
    fault_count: u32,
    /// Cycle of the most recent injected fault, for the watchdog.
    faulted_at: u64,
    /// Waiting for outstanding memory to drain before fencing.
    quarantine_pending: bool,
}

impl Tile {
    fn frozen(&self, now: u64) -> bool {
        self.fenced || now < self.stall_until
    }

    fn wedged(&self) -> bool {
        self.stall_until == u64::MAX
    }

    fn accepts_dispatch(&self, now: u64) -> bool {
        self.exec.is_none() && !self.quarantine_pending && !self.frozen(now)
    }
}

/// A spawn the queue could not hold, parked in the DRAM-backed overflow
/// arena. The arena traffic is modeled through the data box; the payload
/// itself is tracked host-side (the modeled 8-byte transfer stands in for
/// bandwidth and latency, not for an argument encoding).
#[derive(Debug)]
struct SpilledEntry {
    args: Vec<Val>,
    parent: Option<(usize, usize)>,
    call_ret: Option<CallRet>,
    via_detach: bool,
    spawned_at: u64,
    /// Arena slot holding the modeled copy; returned to the free pool on
    /// refill or recovery.
    addr: u64,
}

/// A refill in flight: the queue slot is reserved while the arena read
/// travels through the memory system.
#[derive(Debug)]
struct PendingRefill {
    slot: usize,
    entry: SpilledEntry,
}

#[derive(Debug)]
struct TaskUnit {
    name: String,
    func: FuncId,
    dfg: Rc<TaskDfg>,
    block_index: HashMap<BlockId, usize>,
    entries: Vec<Option<QueueEntry>>,
    free: Vec<usize>,
    ready: Vec<usize>, // LIFO: depth-first scheduling bounds queue growth
    tiles: Vec<Tile>,
    port_base: usize,
    stats: UnitStats,
    /// Spilled spawns awaiting a free queue slot, oldest first.
    overflow: std::collections::VecDeque<SpilledEntry>,
    /// At most one refill read outstanding per unit.
    pending_refill: Option<PendingRefill>,
    /// A spawn into this unit was refused this cycle (feeds the
    /// `full_cycles` queue statistic); cleared every cycle.
    spawn_refused: bool,
}

impl TaskUnit {
    fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// What an outstanding memory request is for, so responses route to the
/// right consumer. Tile requests carry a live `(tile, node)` target;
/// spill/refill requests belong to a unit's queue-virtualization machinery
/// and leave those fields unused (`usize::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    /// A dataflow load/store issued by a TXU tile.
    Tile,
    /// A queue entry spilling into the overflow arena.
    SpillWrite,
    /// A spilled entry refilling from the overflow arena.
    RefillRead,
}

/// Everything the engine must remember about an outstanding memory
/// request: where its response routes, the request itself (for retries),
/// and the retry bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ReqMeta {
    kind: ReqKind,
    unit: usize,
    tile: usize,
    node: usize,
    req: MemReq,
    /// Cycle after which the request is considered lost (`u64::MAX` when
    /// no recovery mechanism is armed).
    deadline: u64,
    /// Retries already performed for this access.
    attempts: u32,
}

/// Live profiler state, boxed behind an `Option` so a disabled profiler
/// costs one pointer test per instrumentation site.
#[derive(Debug)]
struct Prof {
    level: ProfileLevel,
    /// `[unit][tile][reason]` cycle counters.
    stalls: Vec<Vec<[u64; 13]>>,
    /// Per-cycle scratch: the tile finished or parked an instance this
    /// cycle (so an empty tile still counts as having worked).
    worked: Vec<Vec<bool>>,
    queues: Vec<QueueOccupancy>,
    /// `[unit][class]` issued-node counters ([`ProfileLevel::Full`] only).
    node_mix: Vec<[u64; 5]>,
    /// Outstanding request id → memory stall class, from data-box grants.
    req_class: HashMap<u64, StallReason>,
}

impl Prof {
    fn new(level: ProfileLevel, units: &[TaskUnit], ntasks: usize) -> Prof {
        Prof {
            level,
            stalls: units.iter().map(|u| vec![[0; 13]; u.tiles.len()]).collect(),
            worked: units.iter().map(|u| vec![false; u.tiles.len()]).collect(),
            queues: units.iter().map(|_| QueueOccupancy::new(ntasks as u32)).collect(),
            node_mix: vec![[0; 5]; units.len()],
            req_class: HashMap::new(),
        }
    }

    fn finish(self, cycles: u64, units: &[TaskUnit]) -> Profile {
        let unit_profiles = units
            .iter()
            .zip(self.stalls)
            .zip(self.queues)
            .zip(self.node_mix)
            .map(|(((u, stalls), q), node_mix)| crate::profile::UnitProfile {
                name: u.name.clone(),
                tiles: stalls.into_iter().map(|s| TileProfile { stalls: s }).collect(),
                queue: QueueSummary {
                    mean_occupancy: q.mean_occupancy(),
                    peak: q.peak(),
                    full_cycles: q.full_cycles(),
                    capacity: q.capacity(),
                },
                node_mix,
            })
            .collect();
        Profile { level: self.level, cycles, units: unit_profiles }
    }
}

fn node_class(op: &NodeOp) -> NodeClass {
    match op {
        NodeOp::Alu(_) | NodeOp::Cmp { .. } | NodeOp::Select | NodeOp::Cast { .. } => {
            NodeClass::IntAlu
        }
        NodeOp::FAlu(_) | NodeOp::FCmp(_) => NodeClass::FloatAlu,
        NodeOp::Load { .. } | NodeOp::Store { .. } | NodeOp::Gep { .. } => NodeClass::Memory,
        NodeOp::Phi { .. } => NodeClass::Control,
        NodeOp::CallSpawn { .. } => NodeClass::Spawn,
    }
}

/// Rank memory stall classes by severity, so a tile with several
/// outstanding requests is charged the most constrained one.
fn mem_severity(r: StallReason) -> u8 {
    match r {
        StallReason::FaultStall => 4,
        StallReason::MshrFull => 3,
        StallReason::DramQueue => 2,
        StallReason::CacheMiss | StallReason::BankConflict => 1,
        _ => 0,
    }
}

// ---------------------------------------------------------------------------
// Snapshot payload codec. Every dynamic structure the engine owns has an
// encode/decode pair here; collections with nondeterministic iteration
// order (HashMaps) are serialized under sorted keys, and heap-ordered
// collections are captured in their in-memory layout upstream (see
// `DataBoxState`/`MemSystemState`), so encoding is a pure function of the
// simulation state. Decoders validate tags and lengths — a corrupt
// payload becomes a `SimError::Snapshot`, never a panic.

fn enc_val(e: &mut Enc, v: Val) {
    match v {
        Val::Int(x) => {
            e.u8(0);
            e.u64(x);
        }
        Val::F32(x) => {
            e.u8(1);
            e.u32(x.to_bits());
        }
        Val::F64(x) => {
            e.u8(2);
            e.u64(x.to_bits());
        }
    }
}

fn dec_val(d: &mut Dec) -> Result<Val, String> {
    Ok(match d.u8()? {
        0 => Val::Int(d.u64()?),
        1 => Val::F32(f32::from_bits(d.u32()?)),
        2 => Val::F64(f64::from_bits(d.u64()?)),
        t => return Err(format!("bad Val tag {t}")),
    })
}

fn enc_mem_req(e: &mut Enc, r: MemReq) {
    e.u64(r.id.0);
    e.usize(r.port);
    e.u64(r.addr);
    e.u8(r.size);
    e.u8(match r.kind {
        MemOpKind::Read => 0,
        MemOpKind::Write => 1,
    });
    e.u64(r.wdata);
}

fn dec_mem_req(d: &mut Dec) -> Result<MemReq, String> {
    Ok(MemReq {
        id: ReqId(d.u64()?),
        port: d.usize()?,
        addr: d.u64()?,
        size: d.u8()?,
        kind: match d.u8()? {
            0 => MemOpKind::Read,
            1 => MemOpKind::Write,
            t => return Err(format!("bad MemOpKind tag {t}")),
        },
        wdata: d.u64()?,
    })
}

fn enc_mem_resp(e: &mut Enc, r: MemResp) {
    e.u64(r.id.0);
    e.usize(r.port);
    e.u64(r.rdata);
}

fn dec_mem_resp(d: &mut Dec) -> Result<MemResp, String> {
    Ok(MemResp { id: ReqId(d.u64()?), port: d.usize()?, rdata: d.u64()? })
}

/// `(due_cycle, response)` schedules: delayed/pending response queues.
fn enc_resp_schedule(e: &mut Enc, v: &[(u64, MemResp)]) {
    e.usize(v.len());
    for &(at, r) in v {
        e.u64(at);
        enc_mem_resp(e, r);
    }
}

fn dec_resp_schedule(d: &mut Dec) -> Result<Vec<(u64, MemResp)>, String> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.u64()?, dec_mem_resp(d)?));
    }
    Ok(out)
}

fn enc_cache(e: &mut Enc, st: &CacheState) {
    e.usize(st.lines.len());
    for &(tag, valid, dirty, lru, fill_done) in &st.lines {
        e.u64(tag);
        e.bool(valid);
        e.bool(dirty);
        e.u64(lru);
        e.u64(fill_done);
    }
    e.usize(st.mshrs.len());
    for &(line_addr, done_at) in &st.mshrs {
        e.u64(line_addr);
        e.u64(done_at);
    }
    e.u64(st.stats.hits);
    e.u64(st.stats.misses);
    e.u64(st.stats.mshr_merges);
    e.u64(st.stats.rejections);
    e.u64(st.stats.writebacks);
    e.u64(st.tick);
    e.u8(match st.last_outcome {
        None => 255,
        Some(AccessOutcome::Hit) => 0,
        Some(AccessOutcome::MshrMerge) => 1,
        Some(AccessOutcome::Miss) => 2,
        Some(AccessOutcome::RejectMshrFull) => 3,
        Some(AccessOutcome::RejectSetBusy) => 4,
    });
}

fn dec_cache(d: &mut Dec) -> Result<CacheState, String> {
    let nl = d.len()?;
    let mut lines = Vec::with_capacity(nl);
    for _ in 0..nl {
        lines.push((d.u64()?, d.bool()?, d.bool()?, d.u64()?, d.u64()?));
    }
    let nm = d.len()?;
    let mut mshrs = Vec::with_capacity(nm);
    for _ in 0..nm {
        mshrs.push((d.u64()?, d.u64()?));
    }
    let stats = CacheStats {
        hits: d.u64()?,
        misses: d.u64()?,
        mshr_merges: d.u64()?,
        rejections: d.u64()?,
        writebacks: d.u64()?,
    };
    let tick = d.u64()?;
    let last_outcome = match d.u8()? {
        255 => None,
        0 => Some(AccessOutcome::Hit),
        1 => Some(AccessOutcome::MshrMerge),
        2 => Some(AccessOutcome::Miss),
        3 => Some(AccessOutcome::RejectMshrFull),
        4 => Some(AccessOutcome::RejectSetBusy),
        t => return Err(format!("bad AccessOutcome tag {t}")),
    };
    Ok(CacheState { lines, mshrs, stats, tick, last_outcome })
}

fn enc_mem_system(e: &mut Enc, st: &MemSystemState) {
    e.bytes(&st.data);
    enc_cache(e, &st.cache);
    e.usize(st.extra_banks.len());
    for b in &st.extra_banks {
        enc_cache(e, b);
    }
    e.bool(st.l2.is_some());
    if let Some(l2) = &st.l2 {
        enc_cache(e, l2);
    }
    e.u64(st.dram.channel_free_at);
    e.u64(st.dram.reads);
    e.u64(st.dram.writes);
    e.u64(st.dram.busy_cycles);
    e.u64(st.dram.queue_cycles);
    e.u64(st.dram.last_queue_delay);
    e.usize(st.last_bank);
    enc_resp_schedule(e, &st.pending);
}

fn dec_mem_system(d: &mut Dec) -> Result<MemSystemState, String> {
    let data = d.bytes()?.to_vec();
    let cache = dec_cache(d)?;
    let nb = d.len()?;
    let mut extra_banks = Vec::with_capacity(nb);
    for _ in 0..nb {
        extra_banks.push(dec_cache(d)?);
    }
    let l2 = if d.bool()? { Some(dec_cache(d)?) } else { None };
    let dram = DramState {
        channel_free_at: d.u64()?,
        reads: d.u64()?,
        writes: d.u64()?,
        busy_cycles: d.u64()?,
        queue_cycles: d.u64()?,
        last_queue_delay: d.u64()?,
    };
    let last_bank = d.usize()?;
    let pending = dec_resp_schedule(d)?;
    Ok(MemSystemState { data, cache, extra_banks, l2, dram, last_bank, pending })
}

fn enc_databox(e: &mut Enc, st: &DataBoxState) {
    e.usize(st.queues.len());
    for q in &st.queues {
        e.usize(q.len());
        for &(req, at) in q {
            enc_mem_req(e, req);
            e.u64(at);
        }
    }
    e.usize(st.rr_next);
    enc_resp_schedule(e, &st.delayed);
    e.u64(st.stats.enqueued);
    e.u64(st.stats.issued);
    e.u64(st.stats.cache_stalls);
    e.u64(st.stats.backpressure);
    e.u64(st.stats.bank_conflicts);
}

fn dec_databox(d: &mut Dec) -> Result<DataBoxState, String> {
    let np = d.len()?;
    let mut queues = Vec::with_capacity(np);
    for _ in 0..np {
        let nq = d.len()?;
        let mut q = Vec::with_capacity(nq);
        for _ in 0..nq {
            q.push((dec_mem_req(d)?, d.u64()?));
        }
        queues.push(q);
    }
    let rr_next = d.usize()?;
    let delayed = dec_resp_schedule(d)?;
    let stats = tapas_mem::DataBoxStats {
        enqueued: d.u64()?,
        issued: d.u64()?,
        cache_stalls: d.u64()?,
        backpressure: d.u64()?,
        bank_conflicts: d.u64()?,
    };
    Ok(DataBoxState { queues, rr_next, delayed, stats })
}

fn enc_exec(e: &mut Enc, x: &Exec) {
    e.usize(x.slot);
    e.usize(x.home);
    e.usize(x.block_idx);
    e.bool(x.prev_block.is_some());
    if let Some(b) = x.prev_block {
        e.u32(b.0);
    }
    e.u64(x.block_start);
    e.u64(x.steal_until);
    e.usize(x.nodes.len());
    for ns in &x.nodes {
        e.bool(ns.issued);
        e.u64(ns.done_at);
        e.bool(ns.value.is_some());
        if let Some(v) = ns.value {
            enc_val(e, v);
        }
    }
    let mut keys: Vec<ValueId> = x.env.keys().copied().collect();
    keys.sort_unstable();
    e.usize(keys.len());
    for k in keys {
        e.u32(k.0);
        enc_val(e, x.env[&k]);
    }
    e.bool(x.resume_block.is_some());
    if let Some(b) = x.resume_block {
        e.u32(b.0);
    }
}

fn dec_exec(d: &mut Dec) -> Result<Exec, String> {
    let slot = d.usize()?;
    let home = d.usize()?;
    let block_idx = d.usize()?;
    let prev_block = if d.bool()? { Some(BlockId(d.u32()?)) } else { None };
    let block_start = d.u64()?;
    let steal_until = d.u64()?;
    let nn = d.len()?;
    let mut nodes = Vec::with_capacity(nn);
    for _ in 0..nn {
        let issued = d.bool()?;
        let done_at = d.u64()?;
        let value = if d.bool()? { Some(dec_val(d)?) } else { None };
        nodes.push(NodeState { issued, done_at, value });
    }
    let ne = d.len()?;
    let mut env = HashMap::with_capacity(ne);
    for _ in 0..ne {
        let k = ValueId(d.u32()?);
        env.insert(k, dec_val(d)?);
    }
    let resume_block = if d.bool()? { Some(BlockId(d.u32()?)) } else { None };
    Ok(Exec {
        slot,
        home,
        block_idx,
        prev_block,
        block_start,
        steal_until,
        nodes,
        env,
        resume_block,
    })
}

fn enc_parent(e: &mut Enc, parent: Option<(usize, usize)>) {
    e.bool(parent.is_some());
    if let Some((u, s)) = parent {
        e.usize(u);
        e.usize(s);
    }
}

fn dec_parent(d: &mut Dec) -> Result<Option<(usize, usize)>, String> {
    Ok(if d.bool()? { Some((d.usize()?, d.usize()?)) } else { None })
}

fn enc_call_ret(e: &mut Enc, cr: Option<CallRet>) {
    e.bool(cr.is_some());
    if let Some(c) = cr {
        e.usize(c.unit);
        e.usize(c.slot);
        e.usize(c.node);
    }
}

fn dec_call_ret(d: &mut Dec) -> Result<Option<CallRet>, String> {
    Ok(if d.bool()? {
        Some(CallRet { unit: d.usize()?, slot: d.usize()?, node: d.usize()? })
    } else {
        None
    })
}

fn enc_entry(e: &mut Enc, q: &QueueEntry) {
    e.usize(q.args.len());
    for &a in &q.args {
        enc_val(e, a);
    }
    enc_parent(e, q.parent);
    enc_call_ret(e, q.call_ret);
    e.u32(q.children);
    e.bool(q.waiting_sync);
    e.bool(q.saved.is_some());
    if let Some(x) = &q.saved {
        enc_exec(e, x);
    }
    e.u64(q.ready_at);
    e.u64(q.spawned_at);
    e.bool(q.dispatched_once);
    e.bool(q.host);
    e.bool(q.via_detach);
    e.bool(q.poisoned);
}

fn dec_entry(d: &mut Dec) -> Result<QueueEntry, String> {
    let na = d.len()?;
    let mut args = Vec::with_capacity(na);
    for _ in 0..na {
        args.push(dec_val(d)?);
    }
    let parent = dec_parent(d)?;
    let call_ret = dec_call_ret(d)?;
    let children = d.u32()?;
    let waiting_sync = d.bool()?;
    let saved = if d.bool()? { Some(Box::new(dec_exec(d)?)) } else { None };
    Ok(QueueEntry {
        args,
        parent,
        call_ret,
        children,
        waiting_sync,
        saved,
        ready_at: d.u64()?,
        spawned_at: d.u64()?,
        dispatched_once: d.bool()?,
        host: d.bool()?,
        via_detach: d.bool()?,
        poisoned: d.bool()?,
    })
}

fn enc_spilled(e: &mut Enc, s: &SpilledEntry) {
    e.usize(s.args.len());
    for &a in &s.args {
        enc_val(e, a);
    }
    enc_parent(e, s.parent);
    enc_call_ret(e, s.call_ret);
    e.bool(s.via_detach);
    e.u64(s.spawned_at);
    e.u64(s.addr);
}

fn dec_spilled(d: &mut Dec) -> Result<SpilledEntry, String> {
    let na = d.len()?;
    let mut args = Vec::with_capacity(na);
    for _ in 0..na {
        args.push(dec_val(d)?);
    }
    Ok(SpilledEntry {
        args,
        parent: dec_parent(d)?,
        call_ret: dec_call_ret(d)?,
        via_detach: d.bool()?,
        spawned_at: d.u64()?,
        addr: d.u64()?,
    })
}

fn enc_event(e: &mut Enc, ev: SimEvent) {
    e.u64(ev.cycle);
    e.usize(ev.unit);
    e.usize(ev.slot);
    match ev.kind {
        SimEventKind::Spawned { parent } => {
            e.u8(0);
            enc_parent(e, parent);
        }
        SimEventKind::Dispatched { tile } => {
            e.u8(1);
            e.usize(tile);
        }
        SimEventKind::SyncWait => e.u8(2),
        SimEventKind::CallWait => e.u8(3),
        SimEventKind::Completed => e.u8(4),
        SimEventKind::CacheMiss { addr } => {
            e.u8(5);
            e.u64(addr);
        }
        SimEventKind::Stolen { by, tile } => {
            e.u8(6);
            e.usize(by);
            e.usize(tile);
        }
    }
}

fn dec_event(d: &mut Dec) -> Result<SimEvent, String> {
    let cycle = d.u64()?;
    let unit = d.usize()?;
    let slot = d.usize()?;
    let kind = match d.u8()? {
        0 => SimEventKind::Spawned { parent: dec_parent(d)? },
        1 => SimEventKind::Dispatched { tile: d.usize()? },
        2 => SimEventKind::SyncWait,
        3 => SimEventKind::CallWait,
        4 => SimEventKind::Completed,
        5 => SimEventKind::CacheMiss { addr: d.u64()? },
        6 => SimEventKind::Stolen { by: d.usize()?, tile: d.usize()? },
        t => return Err(format!("bad SimEventKind tag {t}")),
    };
    Ok(SimEvent { cycle, unit, slot, kind })
}

fn enc_req_meta(e: &mut Enc, m: ReqMeta) {
    e.u8(match m.kind {
        ReqKind::Tile => 0,
        ReqKind::SpillWrite => 1,
        ReqKind::RefillRead => 2,
    });
    e.usize(m.unit);
    e.usize(m.tile);
    e.usize(m.node);
    enc_mem_req(e, m.req);
    e.u64(m.deadline);
    e.u32(m.attempts);
}

fn dec_req_meta(d: &mut Dec) -> Result<ReqMeta, String> {
    Ok(ReqMeta {
        kind: match d.u8()? {
            0 => ReqKind::Tile,
            1 => ReqKind::SpillWrite,
            2 => ReqKind::RefillRead,
            t => return Err(format!("bad ReqKind tag {t}")),
        },
        unit: d.usize()?,
        tile: d.usize()?,
        node: d.usize()?,
        req: dec_mem_req(d)?,
        deadline: d.u64()?,
        attempts: d.u32()?,
    })
}

/// Per-run loop control: the values [`Accelerator::run_loop`] threads
/// between iterations but that live outside the architectural state.
/// Snapshots carry these alongside the component state so a resumed loop
/// continues with the exact control values the killed loop held.
#[derive(Debug, Clone, Copy)]
struct RunCtl {
    /// `self.cycle` when the run began (memory persists across runs, so
    /// cycle counting is relative).
    start_cycle: u64,
    /// Last cycle any component made progress (deadlock watchdog).
    last_progress: u64,
    /// Executed-cycle count at which the next periodic snapshot fires
    /// (`u64::MAX` when snapshotting is off).
    next_snapshot: u64,
    /// Executed-cycle count at which the halt test hook fires. Kept out
    /// of `cfg` reads so a resume can disarm a hook that already fired.
    halt_at: Option<u64>,
    /// Profiling or tracing is active (grant log enabled).
    instrumented: bool,
    /// The event-driven core may skip idle windows this run.
    event_driven: bool,
}

/// An elaborated TAPAS accelerator: the module's task units wired to the
/// shared memory system, ready to simulate.
pub struct Accelerator {
    module: Rc<Module>,
    units: Vec<TaskUnit>,
    unit_of: HashMap<(u32, u32), usize>, // (func, task) -> unit
    func_root: Vec<usize>,
    databox: DataBox,
    ms: MemSystem,
    /// One steal port per unit (round-robin victim cursor + counters);
    /// only consulted when [`AcceleratorConfig::steal`] is armed.
    steal_ports: Vec<StealPort>,
    req_map: HashMap<u64, ReqMeta>,
    next_req: u64,
    cycle: u64,
    cfg: AcceleratorConfig,
    spawns: u64,
    calls: u64,
    total_spawn_latency: u64,
    min_spawn_latency: u64,
    host_result: Option<Option<Val>>,
    progress: bool,
    events: Vec<SimEvent>,
    prof: Option<Box<Prof>>,
    /// Injection state, rebuilt from the plan at the start of every run;
    /// `None` when no plan is configured (the fault-free fast path).
    fault_rt: Option<Box<FaultRt>>,
    mem_retries: u64,
    ecc_retries: u64,
    spurious_responses: u64,
    faults_injected: u64,
    quarantined_tiles: u64,
    spills: u64,
    refills: u64,
    inline_spawns: u64,
    skipped_cycles: u64,
    engine_events: u64,
    /// Overflow-arena bounds ([`spill_base`, `spill_limit`) in bytes);
    /// both 0 when queue virtualization is off. Also marks the top of the
    /// program-visible address space for inline execution's bounds checks.
    spill_base: u64,
    spill_limit: u64,
    /// Bump allocator over the arena, with a free list of returned slots.
    spill_next: u64,
    spill_free: Vec<u64>,
    /// Snapshot captured when the `halt_at_cycle` test hook fired,
    /// retrievable once via [`Accelerator::take_halt_snapshot`].
    halt_snapshot: Option<EngineSnapshot>,
}

impl std::fmt::Debug for Accelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Accelerator")
            .field("units", &self.units.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Accelerator {
    /// Elaborate an accelerator for every function of `module`: extract
    /// tasks (Stage 1), lower TXU dataflows (Stage 2) and instantiate task
    /// units with the Stage 3 parameters in `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Elaborate`] if extraction or lowering fails.
    pub fn elaborate(module: &Module, cfg: &AcceleratorConfig) -> Result<Self, SimError> {
        let graphs = extract_module(module).map_err(|e| SimError::Elaborate(e.to_string()))?;
        let mut units = Vec::new();
        let mut unit_of = HashMap::new();
        let mut func_root = Vec::new();
        let mut port_base = 0usize;
        for graph in &graphs {
            let dfgs = lower_tasks(module, graph, &cfg.latencies)
                .map_err(|e| SimError::Elaborate(e.to_string()))?;
            func_root.push(units.len());
            for dfg in dfgs {
                let tid = dfg.task;
                let name = graph.task(tid).name.clone();
                let tiles = cfg.tiles_for(&name);
                let uid = units.len();
                unit_of.insert((graph.func.0, tid.0), uid);
                let block_index =
                    dfg.blocks.iter().enumerate().map(|(i, b)| (b.block, i)).collect();
                let ports = tiles * dfg.mem_ports;
                units.push(TaskUnit {
                    stats: UnitStats { name: name.clone(), tiles, ..UnitStats::default() },
                    name,
                    func: graph.func,
                    dfg: Rc::new(dfg),
                    block_index,
                    entries: (0..cfg.ntasks).map(|_| None).collect(),
                    free: (0..cfg.ntasks).rev().collect(),
                    ready: Vec::new(),
                    tiles: (0..tiles).map(|_| Tile::default()).collect(),
                    port_base,
                    overflow: std::collections::VecDeque::new(),
                    pending_refill: None,
                    spawn_refused: false,
                });
                port_base += ports;
            }
        }
        let databox =
            DataBox::new(DataBoxConfig { ports: port_base.max(1), ..cfg.databox.clone() });
        let mut ms = match &cfg.l2 {
            Some(l2) => {
                MemSystem::with_l2(cfg.mem_bytes, cfg.cache.clone(), l2.clone(), cfg.dram.clone())
            }
            None => MemSystem::new(cfg.mem_bytes, cfg.cache.clone(), cfg.dram.clone()),
        };
        // Split the L1 into address-interleaved banks; `1` is a no-op that
        // keeps the seed cache bit-identical.
        ms.split_banks(cfg.l1_banks);
        // Queue virtualization parks overflow entries in a DRAM region
        // above the program's declared footprint; reserving it here keeps
        // the address map stable across runs.
        let (spill_base, spill_limit) = match &cfg.admission {
            Some(a) if a.spill => {
                let bytes = a.overflow_entries * 8;
                let base = ms.reserve_overflow(bytes);
                (base, base + bytes as u64)
            }
            _ => (0, 0),
        };
        let steal_ports = (0..units.len()).map(|_| StealPort::new()).collect();
        Ok(Accelerator {
            module: Rc::new(module.clone()),
            units,
            unit_of,
            func_root,
            databox,
            ms,
            steal_ports,
            req_map: HashMap::new(),
            next_req: 0,
            cycle: 0,
            cfg: cfg.clone(),
            spawns: 0,
            calls: 0,
            total_spawn_latency: 0,
            min_spawn_latency: u64::MAX,
            host_result: None,
            progress: false,
            events: Vec::new(),
            prof: None,
            fault_rt: None,
            mem_retries: 0,
            ecc_retries: 0,
            spurious_responses: 0,
            faults_injected: 0,
            quarantined_tiles: 0,
            spills: 0,
            refills: 0,
            inline_spawns: 0,
            skipped_cycles: 0,
            engine_events: 0,
            spill_base,
            spill_limit,
            spill_next: spill_base,
            spill_free: Vec::new(),
            halt_snapshot: None,
        })
    }

    /// Drain the recorded task-level event trace (empty unless
    /// `record_events` was enabled in the configuration).
    pub fn take_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    fn record(&mut self, cycle: u64, unit: usize, slot: usize, kind: SimEventKind) {
        if self.tracing() {
            self.events.push(SimEvent { cycle, unit, slot, kind });
        }
    }

    /// Whether task-level events are being recorded (explicitly, or
    /// implied by a trace path).
    fn tracing(&self) -> bool {
        self.cfg.record_events || self.cfg.trace_path.is_some()
    }

    /// Render the recorded event trace in the Chrome `chrome://tracing`
    /// trace-event JSON format (see [`crate::profile::chrome_trace`]).
    /// Empty unless events were recorded.
    pub fn chrome_trace(&self) -> String {
        crate::profile::chrome_trace(&self.events, &self.unit_names())
    }

    /// The accelerator's shared memory.
    pub fn mem(&self) -> &MemSystem {
        &self.ms
    }

    /// Mutable access to the shared memory (host-side initialization).
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.ms
    }

    /// Number of task units in the design.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Names of all task units, in elaboration order.
    pub fn unit_names(&self) -> Vec<String> {
        self.units.iter().map(|u| u.name.clone()).collect()
    }

    /// Invoke `func` with `args` and simulate to completion.
    ///
    /// Can be called repeatedly; memory contents persist across runs while
    /// cycle counting restarts (the cache keeps its state — use
    /// [`MemSystem::cache`] `flush` for cold-cache runs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on cycle-budget exhaustion or functional faults.
    pub fn run(&mut self, func: FuncId, args: &[Val]) -> Result<SimOutcome, SimError> {
        let root_unit = self.func_root[func.0 as usize];
        self.host_result = None;
        self.prof = match self.cfg.profile {
            ProfileLevel::Off => None,
            level => Some(Box::new(Prof::new(level, &self.units, self.cfg.ntasks))),
        };
        let instrumented = self.prof.is_some() || self.tracing();
        self.databox.set_grant_log(instrumented);
        // Rebuild injection state from the plan every run so repeated runs
        // observe the same fault sequence, and reset recovery bookkeeping.
        self.fault_rt = self.cfg.faults.as_ref().filter(|p| !p.is_empty()).map(|p| {
            let geometry: Vec<usize> = self.units.iter().map(|u| u.tiles.len()).collect();
            Box::new(FaultRt::new(p, &geometry))
        });
        self.mem_retries = 0;
        self.ecc_retries = 0;
        self.spurious_responses = 0;
        self.faults_injected = 0;
        self.quarantined_tiles = 0;
        self.spills = 0;
        self.refills = 0;
        self.inline_spawns = 0;
        self.skipped_cycles = 0;
        self.engine_events = 0;
        // Fault plans inject per-cycle (tile stalls, response draws), so a
        // faulted run steps every cycle; the fault-free path may skip.
        let event_driven = self.cfg.event_driven && self.fault_rt.is_none();
        for p in &mut self.steal_ports {
            *p = StealPort::new();
        }
        for u in &mut self.units {
            for t in &mut u.tiles {
                t.fenced = false;
                t.stall_until = 0;
                t.fault_count = 0;
                t.faulted_at = 0;
                t.quarantine_pending = false;
                t.inline_busy_until = 0;
            }
        }
        if self.cfg.admission.is_some() {
            self.spill_next = self.spill_base;
            self.spill_free.clear();
            for u in &mut self.units {
                u.overflow.clear();
                u.pending_refill = None;
                u.spawn_refused = false;
            }
        }
        let start_cycle = self.cycle;
        let slot = self
            .alloc_entry(root_unit, args.to_vec(), None, None, self.cycle, true, false)
            .map_err(|_| SimError::QueueFull)?;
        let _ = slot;
        self.run_loop(RunCtl {
            start_cycle,
            last_progress: self.cycle,
            next_snapshot: self.cfg.snapshot.as_ref().map_or(u64::MAX, |s| s.every),
            halt_at: self.cfg.halt_at_cycle,
            instrumented,
            event_driven,
        })
    }

    /// The engine's cycle loop plus the end-of-run statistics, shared by
    /// [`Accelerator::run`] (fresh `RunCtl`) and [`Accelerator::resume`]
    /// (`RunCtl` decoded from a snapshot). Each iteration starts at a
    /// snapshot boundary: no cycle's work is half-done, so the state
    /// captured here restores to a byte-identical continuation.
    fn run_loop(&mut self, ctl: RunCtl) -> Result<SimOutcome, SimError> {
        let RunCtl { start_cycle, mut last_progress, mut next_snapshot, halt_at, .. } = ctl;
        let (instrumented, event_driven) = (ctl.instrumented, ctl.event_driven);
        while self.host_result.is_none() {
            let done = self.cycle - start_cycle;
            if done >= next_snapshot {
                // Advance the schedule *before* capturing so the stored
                // `next_snapshot` is the post-write value: a resumed run
                // re-snapshots at the following boundary, not this one.
                let sc = self.cfg.snapshot.clone().expect("next_snapshot finite only with config");
                while next_snapshot <= done {
                    next_snapshot += sc.every;
                }
                let snap = self.capture_snapshot(RunCtl {
                    start_cycle,
                    last_progress,
                    next_snapshot,
                    halt_at,
                    instrumented,
                    event_driven,
                });
                snap.write_atomic(&sc.path).map_err(|e| SimError::Snapshot(e.to_string()))?;
            }
            if halt_at.is_some_and(|h| done >= h) {
                // The chaos harness's deterministic "kill": capture in
                // memory (no disk round-trip) and stop mid-simulation.
                self.halt_snapshot = Some(self.capture_snapshot(RunCtl {
                    start_cycle,
                    last_progress,
                    next_snapshot,
                    halt_at,
                    instrumented,
                    event_driven,
                }));
                return Err(SimError::Halted { at: self.cycle });
            }
            let now = self.cycle;
            if self.fault_rt.is_some() {
                self.apply_tile_faults(now);
                self.process_quarantines(now)?;
            }
            if let Err(fault) = self.databox.tick(now, &mut self.ms) {
                let meta = self.req_map.get(&fault.req.id.0).copied();
                return Err(SimError::Memory {
                    unit: meta.map(|m| self.units[m.unit].name.clone()),
                    tile: meta.map(|m| m.tile),
                    fault: fault.err,
                });
            }
            if instrumented {
                self.classify_grants(now);
            }
            for resp in self.databox.pop_responses(now) {
                self.route_with_faults(resp, now);
            }
            if self.fault_rt.is_some() {
                self.deliver_delayed(now);
                self.scan_retries(now)?;
            }
            if self.cfg.admission.is_some() {
                self.pump_refills(now);
            }
            for u in 0..self.units.len() {
                self.dispatch(u, now)?;
            }
            // Steal probes run strictly after every unit's own dispatch:
            // the owner wins a same-cycle pop/steal race by construction,
            // and an entry can never dispatch twice in one cycle.
            if self.cfg.steal.is_some() {
                self.steal_pass(now);
            }
            for u in 0..self.units.len() {
                for t in 0..self.units[u].tiles.len() {
                    self.advance_tile(u, t, now)?;
                }
            }
            if self.fault_rt.is_some() {
                self.check_watchdog(now)?;
            }
            if self.prof.is_some() {
                self.attribute_cycle(now);
            }
            let prof = self.prof.as_deref_mut();
            let mut queues = prof.map(|p| p.queues.iter_mut());
            for u in &mut self.units {
                let occ = u.occupancy();
                let refused = std::mem::take(&mut u.spawn_refused);
                u.stats.queue_peak = u.stats.queue_peak.max(occ);
                u.stats.busy_tile_cycles +=
                    u.tiles.iter().filter(|t| t.exec.is_some()).count() as u64;
                if let Some(qs) = queues.as_mut() {
                    // invariant: the profiler allocates exactly one
                    // accumulator per unit before the loop starts.
                    qs.next()
                        .expect("one occupancy accumulator per unit")
                        .observe_spawns(occ as u32, refused);
                }
            }
            if self.progress || self.ms.has_pending() {
                last_progress = now;
                self.progress = false;
            } else {
                let stalled = now - last_progress;
                let recover = self.cfg.admission.is_some_and(|a| stalled > a.recovery_window);
                if recover && self.recover_blocked_spawn(now)? {
                    last_progress = now;
                } else if stalled > 100_000 {
                    return Err(SimError::Deadlock {
                        at: now,
                        diagnosis: Box::new(self.diagnose_deadlock(now)),
                    });
                }
            }
            self.cycle += 1;
            self.engine_events += 1;
            if self.cycle - start_cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimit(self.cfg.max_cycles));
            }
            // Event-driven advance: when every component is quiescent, the
            // stepped engine would execute identical no-op iterations until
            // the earliest pending event. Jump the cycle counter straight
            // there, bulk-applying the per-cycle bookkeeping those idle
            // iterations would have done. `self.progress` can only still be
            // true here after a successful deadlock recovery, whose carried
            // flag feeds the *next* iteration's progress check — step it.
            // Once the root task has produced the host result the loop is
            // about to exit; advancing past that point would inflate the
            // final cycle count.
            if event_driven && !self.progress && self.host_result.is_none() {
                let target = self
                    .next_event_cycle(now, last_progress)
                    .min(start_cycle.saturating_add(self.cfg.max_cycles));
                if target > self.cycle {
                    let skipped = target - self.cycle;
                    self.skipped_cycles += skipped;
                    for u in &mut self.units {
                        let busy = u.tiles.iter().filter(|t| t.exec.is_some()).count() as u64;
                        u.stats.busy_tile_cycles += busy * skipped;
                    }
                    if self.prof.is_some() {
                        self.attribute_skipped(skipped);
                    }
                    // The stepped engine refreshes `last_progress` every
                    // cycle while memory is in flight; replicate the value
                    // it would hold entering the target iteration.
                    if self.ms.has_pending() {
                        last_progress = target - 1;
                    }
                    self.cycle = target;
                }
            }
        }
        let cycles = self.cycle - start_cycle;
        let stats = SimStats {
            cycles,
            spawns: self.spawns,
            calls: self.calls,
            total_spawn_latency: self.total_spawn_latency,
            min_spawn_latency: (self.min_spawn_latency != u64::MAX)
                .then_some(self.min_spawn_latency),
            units: self.units.iter().map(|u| u.stats.clone()).collect(),
            cache: self.ms.l1_stats(),
            dram_reads: self.ms.dram.reads,
            dram_writes: self.ms.dram.writes,
            databox_issued: self.databox.stats().issued,
            cache_stalls: self.databox.stats().cache_stalls,
            bank_conflicts: self.databox.stats().bank_conflicts,
            mem_retries: self.mem_retries,
            ecc_retries: self.ecc_retries,
            spurious_responses: self.spurious_responses,
            faults_injected: self.faults_injected,
            quarantined_tiles: self.quarantined_tiles,
            spills: self.spills,
            refills: self.refills,
            inline_spawns: self.inline_spawns,
            steals: self.steal_ports.iter().map(|p| p.steals).sum(),
            steal_fail: self.steal_ports.iter().map(|p| p.failures).sum(),
            skipped_cycles: self.skipped_cycles,
            engine_events: self.engine_events,
        };
        debug_assert_eq!(cycles, stats.engine_events + stats.skipped_cycles);
        let profile = self.prof.take().map(|p| p.finish(cycles, &self.units));
        if let Some(path) = self.cfg.trace_path.clone() {
            let trace = self.chrome_trace();
            std::fs::write(&path, trace)
                .map_err(|e| SimError::Trace(format!("{}: {e}", path.display())))?;
        }
        Ok(SimOutcome { ret: self.host_result.take().flatten(), cycles, stats, profile })
    }

    /// Restore `snap` into this accelerator and run to completion.
    ///
    /// The accelerator must be elaborated from the same module with the
    /// same configuration — the snapshot's fingerprint enforces this,
    /// deliberately excluding the `snapshot` and `halt_at_cycle` knobs
    /// (a kill-run and its resume-run differ in exactly those). The
    /// returned outcome — cycles, statistics, profile, event trace — is
    /// byte-identical to what the uninterrupted run would have produced.
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] when the fingerprint does not match or the
    /// payload fails to decode; otherwise whatever the continued
    /// simulation reports.
    pub fn resume(&mut self, snap: &EngineSnapshot) -> Result<SimOutcome, SimError> {
        let ctl = self.restore_snapshot(snap)?;
        self.run_loop(ctl)
    }

    /// The in-memory snapshot captured when the
    /// [`halt_at_cycle`](crate::AcceleratorConfig::halt_at_cycle) hook
    /// fired (consumed on first call).
    pub fn take_halt_snapshot(&mut self) -> Option<EngineSnapshot> {
        self.halt_snapshot.take()
    }

    /// Hash of everything the snapshot payload's meaning depends on: the
    /// elaborated geometry plus the configuration, excluding the
    /// `snapshot`/`halt_at_cycle` knobs themselves so the kill-run and
    /// its resume-run fingerprint identically.
    fn fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "v{};", crate::snapshot::SNAPSHOT_VERSION);
        for u in &self.units {
            let _ = write!(
                s,
                "unit {} func={} entries={} tiles={} blocks={} ports@{};",
                u.name,
                u.func.0,
                u.entries.len(),
                u.tiles.len(),
                u.dfg.blocks.len(),
                u.port_base
            );
        }
        let _ = write!(s, "spill {}..{};", self.spill_base, self.spill_limit);
        // HashMap iteration order varies between processes; render the
        // overrides sorted and factor them out of the `Debug` rendering
        // below, which is otherwise deterministic.
        let mut overrides: Vec<(&String, &usize)> = self.cfg.tile_overrides.iter().collect();
        overrides.sort();
        let _ = write!(s, "overrides {overrides:?};");
        let mut cfg = self.cfg.clone();
        cfg.tile_overrides = HashMap::new();
        cfg.snapshot = None;
        cfg.halt_at_cycle = None;
        let _ = write!(s, "cfg {cfg:?}");
        crate::snapshot::fnv64(s.as_bytes())
    }

    /// Capture every piece of clocked state into a snapshot. Called only
    /// at the top of a `run_loop` iteration, where no cycle's work is
    /// half-done: the grant log is drained, per-tick scratch is clear,
    /// the profiler's `worked` flags are all false, and `host_result` is
    /// still pending.
    fn capture_snapshot(&self, ctl: RunCtl) -> EngineSnapshot {
        let mut e = Enc::default();
        e.u64(ctl.start_cycle);
        e.u64(ctl.last_progress);
        e.u64(ctl.next_snapshot);
        e.u64(self.next_req);
        e.u64(self.spawns);
        e.u64(self.calls);
        e.u64(self.total_spawn_latency);
        e.u64(self.min_spawn_latency);
        e.bool(self.progress);
        e.u64(self.mem_retries);
        e.u64(self.ecc_retries);
        e.u64(self.spurious_responses);
        e.u64(self.faults_injected);
        e.u64(self.quarantined_tiles);
        e.u64(self.spills);
        e.u64(self.refills);
        e.u64(self.inline_spawns);
        e.u64(self.skipped_cycles);
        e.u64(self.engine_events);
        e.u64(self.spill_next);
        e.usize(self.spill_free.len());
        for &a in &self.spill_free {
            e.u64(a);
        }
        e.usize(self.units.len());
        for u in &self.units {
            e.usize(u.entries.len());
            for entry in &u.entries {
                e.bool(entry.is_some());
                if let Some(q) = entry {
                    enc_entry(&mut e, q);
                }
            }
            e.usize(u.free.len());
            for &s in &u.free {
                e.usize(s);
            }
            e.usize(u.ready.len());
            for &s in &u.ready {
                e.usize(s);
            }
            e.usize(u.tiles.len());
            for t in &u.tiles {
                e.bool(t.exec.is_some());
                if let Some(x) = &t.exec {
                    enc_exec(&mut e, x);
                }
                e.u64(t.inline_busy_until);
                e.bool(t.fenced);
                e.u64(t.stall_until);
                e.u32(t.fault_count);
                e.u64(t.faulted_at);
                e.bool(t.quarantine_pending);
            }
            e.u64(u.stats.tasks_executed);
            e.u64(u.stats.busy_tile_cycles);
            e.u64(u.stats.spawn_stalls);
            e.usize(u.stats.queue_peak);
            e.usize(u.overflow.len());
            for s in &u.overflow {
                enc_spilled(&mut e, s);
            }
            e.bool(u.pending_refill.is_some());
            if let Some(r) = &u.pending_refill {
                e.usize(r.slot);
                enc_spilled(&mut e, &r.entry);
            }
            e.bool(u.spawn_refused);
        }
        for p in &self.steal_ports {
            let st = p.save_state();
            e.usize(st.cursor);
            e.u64(st.steals);
            e.u64(st.failures);
        }
        let mut ids: Vec<u64> = self.req_map.keys().copied().collect();
        ids.sort_unstable();
        e.usize(ids.len());
        for id in ids {
            e.u64(id);
            enc_req_meta(&mut e, self.req_map[&id]);
        }
        enc_mem_system(&mut e, &self.ms.save_state());
        enc_databox(&mut e, &self.databox.save_state());
        e.usize(self.events.len());
        for &ev in &self.events {
            enc_event(&mut e, ev);
        }
        e.bool(self.prof.is_some());
        if let Some(p) = self.prof.as_deref() {
            e.u8(match p.level {
                ProfileLevel::Off => 0,
                ProfileLevel::Summary => 1,
                ProfileLevel::Full => 2,
            });
            for unit in &p.stalls {
                for tile in unit {
                    for &c in tile {
                        e.u64(c);
                    }
                }
            }
            for q in &p.queues {
                let st = q.save_state();
                e.u64(st.samples);
                e.u64(st.total);
                e.u32(st.peak);
                e.u64(st.full_cycles);
                e.u32(st.capacity);
            }
            for mix in &p.node_mix {
                for &c in mix {
                    e.u64(c);
                }
            }
            let mut rids: Vec<u64> = p.req_class.keys().copied().collect();
            rids.sort_unstable();
            e.usize(rids.len());
            for id in rids {
                e.u64(id);
                e.u8(p.req_class[&id] as u8);
            }
        }
        e.bool(self.fault_rt.is_some());
        if let Some(rt) = self.fault_rt.as_deref() {
            let pos = rt.save_position();
            e.usize(pos.next_tile_fault);
            e.u64(pos.resp_seen);
            e.u64(pos.spawn_seen);
            enc_resp_schedule(&mut e, &pos.delayed);
        }
        EngineSnapshot { fingerprint: self.fingerprint(), cycle: self.cycle, payload: e.buf }
    }

    /// Verify `snap` against this design and overwrite every piece of
    /// dynamic state with the snapshot's, returning the loop control to
    /// continue with.
    fn restore_snapshot(&mut self, snap: &EngineSnapshot) -> Result<RunCtl, SimError> {
        let expected = self.fingerprint();
        if snap.fingerprint != expected {
            let e = SnapshotError::Fingerprint { expected, found: snap.fingerprint };
            return Err(SimError::Snapshot(e.to_string()));
        }
        self.restore_payload(snap)
            .map_err(|e| SimError::Snapshot(format!("at cycle {}: {e}", snap.cycle)))
    }

    fn restore_payload(&mut self, snap: &EngineSnapshot) -> Result<RunCtl, String> {
        let mut d = Dec::new(&snap.payload);
        let start_cycle = d.u64()?;
        let last_progress = d.u64()?;
        // The stored schedule position only binds when the *resuming*
        // configuration still arms periodic snapshots (possibly at a
        // different interval or path); resuming without them must not
        // inherit a finite boundary. Re-derive from the current config:
        // the next `every`-multiple strictly beyond the captured point.
        let stored_next = d.u64()?;
        let next_snapshot = match self.cfg.snapshot.as_ref() {
            Some(sc) => {
                let done = snap.cycle.saturating_sub(start_cycle);
                let mut next = stored_next.min(sc.every);
                while next <= done {
                    next = next.saturating_add(sc.every);
                }
                next
            }
            None => u64::MAX,
        };
        self.next_req = d.u64()?;
        self.spawns = d.u64()?;
        self.calls = d.u64()?;
        self.total_spawn_latency = d.u64()?;
        self.min_spawn_latency = d.u64()?;
        self.progress = d.bool()?;
        self.mem_retries = d.u64()?;
        self.ecc_retries = d.u64()?;
        self.spurious_responses = d.u64()?;
        self.faults_injected = d.u64()?;
        self.quarantined_tiles = d.u64()?;
        self.spills = d.u64()?;
        self.refills = d.u64()?;
        self.inline_spawns = d.u64()?;
        self.skipped_cycles = d.u64()?;
        self.engine_events = d.u64()?;
        self.spill_next = d.u64()?;
        let nf = d.len()?;
        self.spill_free = (0..nf).map(|_| d.u64()).collect::<Result<_, _>>()?;
        let nu = d.len()?;
        if nu != self.units.len() {
            return Err(format!("snapshot has {nu} task units, design has {}", self.units.len()));
        }
        for ui in 0..nu {
            let ne = d.len()?;
            if ne != self.units[ui].entries.len() {
                return Err(format!(
                    "unit {ui}: snapshot has {ne} queue entries, design has {}",
                    self.units[ui].entries.len()
                ));
            }
            let mut entries = Vec::with_capacity(ne);
            for _ in 0..ne {
                entries.push(if d.bool()? { Some(dec_entry(&mut d)?) } else { None });
            }
            let nfree = d.len()?;
            let free = (0..nfree).map(|_| d.usize()).collect::<Result<Vec<_>, _>>()?;
            let nready = d.len()?;
            let ready = (0..nready).map(|_| d.usize()).collect::<Result<Vec<_>, _>>()?;
            let nt = d.len()?;
            if nt != self.units[ui].tiles.len() {
                return Err(format!(
                    "unit {ui}: snapshot has {nt} tiles, design has {}",
                    self.units[ui].tiles.len()
                ));
            }
            let mut tiles = Vec::with_capacity(nt);
            for _ in 0..nt {
                let exec = if d.bool()? { Some(dec_exec(&mut d)?) } else { None };
                tiles.push(Tile {
                    exec,
                    inline_busy_until: d.u64()?,
                    fenced: d.bool()?,
                    stall_until: d.u64()?,
                    fault_count: d.u32()?,
                    faulted_at: d.u64()?,
                    quarantine_pending: d.bool()?,
                });
            }
            let tasks_executed = d.u64()?;
            let busy_tile_cycles = d.u64()?;
            let spawn_stalls = d.u64()?;
            let queue_peak = d.usize()?;
            let no = d.len()?;
            let mut overflow = std::collections::VecDeque::with_capacity(no);
            for _ in 0..no {
                overflow.push_back(dec_spilled(&mut d)?);
            }
            let pending_refill = if d.bool()? {
                Some(PendingRefill { slot: d.usize()?, entry: dec_spilled(&mut d)? })
            } else {
                None
            };
            let spawn_refused = d.bool()?;
            let u = &mut self.units[ui];
            u.entries = entries;
            u.free = free;
            u.ready = ready;
            u.tiles = tiles;
            u.stats.tasks_executed = tasks_executed;
            u.stats.busy_tile_cycles = busy_tile_cycles;
            u.stats.spawn_stalls = spawn_stalls;
            u.stats.queue_peak = queue_peak;
            u.overflow = overflow;
            u.pending_refill = pending_refill;
            u.spawn_refused = spawn_refused;
        }
        for p in &mut self.steal_ports {
            let st = StealPortState { cursor: d.usize()?, steals: d.u64()?, failures: d.u64()? };
            p.restore_state(&st);
        }
        let nr = d.len()?;
        self.req_map = HashMap::with_capacity(nr);
        for _ in 0..nr {
            let id = d.u64()?;
            let meta = dec_req_meta(&mut d)?;
            self.req_map.insert(id, meta);
        }
        let ms_state = dec_mem_system(&mut d)?;
        self.ms.restore_state(&ms_state)?;
        let db_state = dec_databox(&mut d)?;
        self.databox.restore_state(&db_state)?;
        let nev = d.len()?;
        let mut events = Vec::with_capacity(nev);
        for _ in 0..nev {
            events.push(dec_event(&mut d)?);
        }
        self.events = events;
        self.prof = if d.bool()? {
            let level = match d.u8()? {
                0 => ProfileLevel::Off,
                1 => ProfileLevel::Summary,
                2 => ProfileLevel::Full,
                t => return Err(format!("bad ProfileLevel tag {t}")),
            };
            let mut p = Box::new(Prof::new(level, &self.units, self.cfg.ntasks));
            for unit in &mut p.stalls {
                for tile in unit {
                    for c in tile.iter_mut() {
                        *c = d.u64()?;
                    }
                }
            }
            for q in &mut p.queues {
                let st = QueueOccupancyState {
                    samples: d.u64()?,
                    total: d.u64()?,
                    peak: d.u32()?,
                    full_cycles: d.u64()?,
                    capacity: d.u32()?,
                };
                q.restore_state(&st);
            }
            for mix in &mut p.node_mix {
                for c in mix.iter_mut() {
                    *c = d.u64()?;
                }
            }
            let nc = d.len()?;
            for _ in 0..nc {
                let id = d.u64()?;
                let idx = d.u8()? as usize;
                let class = *StallReason::ALL
                    .get(idx)
                    .ok_or_else(|| format!("bad StallReason tag {idx}"))?;
                p.req_class.insert(id, class);
            }
            Some(p)
        } else {
            None
        };
        // The fault *plan* is configuration: rebuild the runtime from it
        // exactly as `run` does, then re-position the schedule.
        self.fault_rt = self.cfg.faults.as_ref().filter(|p| !p.is_empty()).map(|p| {
            let geometry: Vec<usize> = self.units.iter().map(|u| u.tiles.len()).collect();
            Box::new(FaultRt::new(p, &geometry))
        });
        if d.bool()? {
            let pos = crate::fault::FaultRtPosition {
                next_tile_fault: d.usize()?,
                resp_seen: d.u64()?,
                spawn_seen: d.u64()?,
                delayed: dec_resp_schedule(&mut d)?,
            };
            let rt = self.fault_rt.as_deref_mut().ok_or_else(|| {
                "snapshot has a fault-schedule position but no fault plan is configured".to_string()
            })?;
            rt.restore_position(&pos);
        } else if self.fault_rt.is_some() {
            return Err(
                "snapshot has no fault-schedule position but a fault plan is configured".into()
            );
        }
        d.finish()?;
        self.cycle = snap.cycle;
        self.host_result = None;
        self.halt_snapshot = None;
        let instrumented = self.prof.is_some() || self.tracing();
        self.databox.set_grant_log(instrumented);
        let event_driven = self.cfg.event_driven && self.fault_rt.is_none();
        Ok(RunCtl {
            start_cycle,
            last_progress,
            next_snapshot,
            // A halt hook at or before the restored point already fired
            // in the run that produced this snapshot; don't re-fire it.
            halt_at: self.cfg.halt_at_cycle.filter(|&h| h > snap.cycle.saturating_sub(start_cycle)),
            instrumented,
            event_driven,
        })
    }

    /// Fold this cycle's data-box grant log into the profiler's
    /// per-request stall classes and the event trace (cache misses).
    fn classify_grants(&mut self, now: u64) {
        for g in self.databox.take_grant_log() {
            let class = match g.class {
                GrantClass::Hit => StallReason::WaitingDatabox,
                GrantClass::Miss => StallReason::CacheMiss,
                GrantClass::MissDramQueued => StallReason::DramQueue,
                GrantClass::Rejected => StallReason::MshrFull,
                GrantClass::BankConflict => StallReason::BankConflict,
            };
            if let Some(p) = self.prof.as_deref_mut() {
                p.req_class.insert(g.id.0, class);
            }
            if matches!(g.class, GrantClass::Miss | GrantClass::MissDramQueued) && self.tracing() {
                if let Some(t) =
                    self.req_map.get(&g.id.0).copied().filter(|t| t.kind == ReqKind::Tile)
                {
                    // Key the trace event by the owning (home) unit so it
                    // lands on the same track as the task's exec span even
                    // when a stolen instance misses from a foreign tile.
                    let target =
                        self.units[t.unit].tiles[t.tile].exec.as_ref().map(|e| (e.home, e.slot));
                    if let Some((home, slot)) = target {
                        self.record(now, home, slot, SimEventKind::CacheMiss { addr: g.addr });
                    }
                }
            }
        }
    }

    /// Worst outstanding memory class per (unit, tile), from the request
    /// map and the data box's grant classifications.
    fn mem_wait_map(
        &self,
        req_class: &HashMap<u64, StallReason>,
    ) -> HashMap<(usize, usize), StallReason> {
        let mut mem_wait: HashMap<(usize, usize), StallReason> = HashMap::new();
        // Visit requests in id order: `mem_severity` ties (CacheMiss vs
        // BankConflict, both severity 1) resolve first-seen-wins, and a
        // HashMap walk would make that tiebreak — and thus the profile —
        // depend on hasher seeding instead of being run-to-run stable.
        let mut ids: Vec<u64> = self.req_map.keys().copied().collect();
        ids.sort_unstable();
        for id in &ids {
            let t = &self.req_map[id];
            if t.kind != ReqKind::Tile {
                // Spill/refill traffic is charged via the queue-side
                // SpillStall classification, not as a tile memory wait.
                continue;
            }
            let class = if t.attempts > 0 {
                // A request on its retry path is fault recovery, not an
                // ordinary memory stall.
                StallReason::FaultStall
            } else {
                req_class.get(id).copied().unwrap_or(StallReason::WaitingDatabox)
            };
            let worst = mem_wait.entry((t.unit, t.tile)).or_insert(class);
            if mem_severity(class) > mem_severity(*worst) {
                *worst = class;
            }
        }
        mem_wait
    }

    /// Charge exactly one [`StallReason`] to every tile for this cycle.
    /// Runs once per engine-loop iteration; skipped idle windows are
    /// charged in bulk by [`Self::attribute_skipped`]. Together the two
    /// paths charge one reason per tile per *cycle*, which is what makes
    /// the [`Profile::check_invariant`] accounting exact.
    fn attribute_cycle(&mut self, now: u64) {
        let Some(mut prof) = self.prof.take() else {
            return;
        };
        let mem_wait = self.mem_wait_map(&prof.req_class);
        for u in 0..self.units.len() {
            for t in 0..self.units[u].tiles.len() {
                let worked = std::mem::take(&mut prof.worked[u][t]);
                let reason = self.classify_tile(u, t, now, &mem_wait, worked);
                prof.stalls[u][t][reason as usize] += 1;
            }
        }
        self.prof = Some(prof);
    }

    /// Bulk-attribute a skipped idle window of `skipped` cycles starting
    /// at `self.cycle`. Classifying once and multiplying is exact because
    /// every boundary [`Self::classify_tile`] compares the cycle counter
    /// against (`block_start`, `steal_until`, `inline_busy_until`, node
    /// `done_at`s, memory responses, queue `ready_at`s) is itself a
    /// wake-up event reported by [`Self::next_event_cycle`], so no
    /// classification input can change inside the window — and no tile
    /// `worked` in a window the engine proved quiescent.
    fn attribute_skipped(&mut self, skipped: u64) {
        let Some(mut prof) = self.prof.take() else {
            return;
        };
        let now = self.cycle; // first skipped cycle
        let mem_wait = self.mem_wait_map(&prof.req_class);
        for u in 0..self.units.len() {
            for t in 0..self.units[u].tiles.len() {
                let reason = self.classify_tile(u, t, now, &mem_wait, false);
                prof.stalls[u][t][reason as usize] += skipped;
            }
        }
        for (u, q) in self.units.iter().zip(prof.queues.iter_mut()) {
            q.observe_idle(u.occupancy() as u32, skipped);
        }
        self.prof = Some(prof);
    }

    /// The earliest cycle after `now` at which the stepped engine would do
    /// anything other than repeat a no-op iteration, computed from the
    /// post-iteration state. Every component upholds the same contract
    /// (DESIGN §14): report the first future cycle at which it could
    /// change architectural state *or any counter*; activities that tick a
    /// counter every cycle (retried grants, backpressured spawns, failing
    /// steal probes, refill attempts) pin the result to `now + 1`, which
    /// disables skipping rather than risk under-counting them.
    fn next_event_cycle(&self, now: u64, last_progress: u64) -> u64 {
        // The stall watchdog: the deadlock check fires (and its diagnosis
        // is taken) at an exact cycle, which skipping must preserve.
        let mut next = last_progress.saturating_add(100_001);
        if let Some(a) = self.cfg.admission {
            if self.units.iter().any(|u| !u.overflow.is_empty()) {
                // Deadlock recovery forces the oldest spill inline the
                // first cycle past the recovery window.
                next = next.min(last_progress.saturating_add(a.recovery_window + 1));
            }
        }
        next = next.min(self.databox.next_event(now));
        if next <= now + 1 {
            // Pinned already (an eligible request retries its grant every
            // cycle) — the unit scans below cannot lower it further.
            return next;
        }
        if let Some(ready) = self.ms.next_event() {
            // The data box must tick at exactly the completion cycle to
            // stage the response into its demux network.
            next = next.min(ready.max(now + 1));
        }
        let steal_armed = self.cfg.steal.is_some() && self.units.len() >= 2;
        for (ui, u) in self.units.iter().enumerate() {
            if self.cfg.admission.is_some()
                && u.pending_refill.is_none()
                && !u.overflow.is_empty()
                && !u.free.is_empty()
            {
                // The refill pump retries its arena read every cycle (a
                // refused data-box enqueue counts backpressure).
                return now + 1;
            }
            let free_tile = u.tiles.iter().any(|t| t.accepts_dispatch(now + 1));
            if free_tile {
                // Owner dispatch fires when the earliest READY entry's
                // spawn handshake completes.
                for &s in &u.ready {
                    if let Some(e) = u.entries[s].as_ref() {
                        next = next.min(e.ready_at.max(now + 1));
                        if next <= now + 1 {
                            return next;
                        }
                    }
                }
                if steal_armed {
                    let lent = u
                        .tiles
                        .iter()
                        .filter(|t| t.exec.as_ref().is_some_and(|e| e.home != ui))
                        .count();
                    if lent + 1 < u.tiles.len() {
                        // An eligible thief probes every cycle, and a
                        // failed probe round increments `steal_fail`.
                        return now + 1;
                    }
                }
            }
            for t in &u.tiles {
                if t.inline_busy_until > now {
                    // Not a state change, but a profiler classification
                    // boundary (SpillStall ends here).
                    next = next.min(t.inline_busy_until);
                }
                let Some(exec) = t.exec.as_ref() else {
                    continue;
                };
                if exec.steal_until > now {
                    // Classification boundary: StealStall ends here.
                    next = next.min(exec.steal_until);
                }
                if exec.block_start > now {
                    // Nodes are fresh until the block transition lands.
                    next = next.min(exec.block_start);
                    if next <= now + 1 {
                        return next;
                    }
                    continue;
                }
                let blk = &self.units[exec.home].dfg.blocks[exec.block_idx];
                let mut all_done = true;
                let mut in_flight = false;
                for ns in &exec.nodes {
                    if ns.issued && ns.done_at != u64::MAX && ns.done_at > now {
                        // A functional unit completes (memory completions
                        // are covered by the memory system's own events).
                        next = next.min(ns.done_at);
                        if next <= now + 1 {
                            // Something finishes next cycle (a unit-latency
                            // ALU op, typically): nothing can beat that.
                            return next;
                        }
                    }
                    if !ns.done(now) {
                        all_done = false;
                        if ns.issued {
                            in_flight = true;
                        }
                    }
                }
                if all_done {
                    // Only a backpressured detach holds a fully drained
                    // instance on a tile; it retries (and counts a spawn
                    // stall) every cycle.
                    return now + 1;
                }
                for (i, ns) in exec.nodes.iter().enumerate() {
                    if ns.issued || !self.deps_ready(&blk.nodes[i], exec, now) {
                        continue;
                    }
                    if in_flight && matches!(blk.nodes[i].op, NodeOp::CallSpawn { .. }) {
                        // The quiesce check retries silently until the
                        // in-flight node drains — that drain is an event.
                        continue;
                    }
                    // A ready node retries its issue every cycle: a
                    // refused load/store counts data-box backpressure, a
                    // refused spawn counts a spawn stall.
                    return now + 1;
                }
            }
        }
        next
    }

    fn classify_tile(
        &self,
        unit: usize,
        tile: usize,
        now: u64,
        mem_wait: &HashMap<(usize, usize), StallReason>,
        worked: bool,
    ) -> StallReason {
        let u = &self.units[unit];
        if u.tiles[tile].frozen(now) || u.tiles[tile].quarantine_pending {
            // Fenced, stalled, or draining for quarantine: the cycle is
            // lost to the injected fault, whatever the tile holds.
            return StallReason::FaultStall;
        }
        if now < u.tiles[tile].inline_busy_until {
            // The tile is serially executing a spawn its queue refused.
            return StallReason::SpillStall;
        }
        let Some(exec) = u.tiles[tile].exec.as_ref() else {
            // Idle tile: attribute to what the task unit is waiting on.
            if worked {
                return StallReason::Busy;
            }
            if u.pending_refill.is_some() || !u.overflow.is_empty() {
                // Work exists but is parked in the overflow arena; the
                // idle cycle is the cost of queue virtualization.
                return StallReason::SpillStall;
            }
            if u.occupancy() == 0 {
                return StallReason::QueueEmpty;
            }
            let parked = u.entries.iter().flatten().any(|e| e.waiting_sync || e.saved.is_some());
            return if parked { StallReason::SyncWait } else { StallReason::QueueEmpty };
        };
        if now < exec.steal_until {
            return StallReason::StealStall; // paying the cross-unit steal latency
        }
        if now < exec.block_start {
            return StallReason::Busy; // block transition in flight
        }
        let blk = &self.units[exec.home].dfg.blocks[exec.block_idx];
        let mut mem_in_flight = false;
        for (i, ns) in exec.nodes.iter().enumerate() {
            if ns.issued && !ns.done(now) {
                match blk.nodes[i].op {
                    NodeOp::Load { .. } | NodeOp::Store { .. } => mem_in_flight = true,
                    // A suspended call never stays on a tile.
                    NodeOp::CallSpawn { .. } => {}
                    // A fixed-latency functional unit is computing.
                    _ => return StallReason::Busy,
                }
            }
        }
        if mem_in_flight {
            return mem_wait.get(&(unit, tile)).copied().unwrap_or(StallReason::WaitingDatabox);
        }
        let mut any_unissued = false;
        for (i, ns) in exec.nodes.iter().enumerate() {
            if ns.issued {
                continue;
            }
            any_unissued = true;
            let node = &blk.nodes[i];
            if self.deps_ready(node, exec, now) {
                return match node.op {
                    // Ready but unissued: the issue attempt was refused.
                    NodeOp::CallSpawn { .. } => StallReason::SpawnBackpressure,
                    NodeOp::Load { .. } | NodeOp::Store { .. } => StallReason::WaitingDatabox,
                    // Became ready after this cycle's issue pass; it will
                    // issue next cycle.
                    _ => StallReason::Busy,
                };
            }
        }
        if any_unissued {
            return StallReason::WaitingOperand;
        }
        // Every node drained but the instance is still resident: only a
        // backpressured detach terminator holds a tile in this state.
        match blk.term {
            TermInfo::Detach { .. } => StallReason::SpawnBackpressure,
            _ => StallReason::Busy,
        }
    }

    /// Mark a tile as having done useful work this cycle even though it
    /// ends the cycle empty (instance completion or suspension).
    fn mark_worked(&mut self, unit: usize, tile: usize) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.worked[unit][tile] = true;
        }
    }

    /// Count an issued node's class ([`ProfileLevel::Full`] only).
    fn note_issue(&mut self, unit: usize, class: NodeClass) {
        if let Some(p) = self.prof.as_deref_mut() {
            if p.level == ProfileLevel::Full {
                p.node_mix[unit][class as usize] += 1;
            }
        }
    }

    // ---- queue management --------------------------------------------------

    /// Allocate a queue entry for a spawn, or hand the argument vector
    /// back (`Err`) when the queue is full so admission control can route
    /// it down the spill or inline path without cloning.
    #[allow(clippy::too_many_arguments)]
    fn alloc_entry(
        &mut self,
        unit: usize,
        args: Vec<Val>,
        parent: Option<(usize, usize)>,
        call_ret: Option<CallRet>,
        now: u64,
        host: bool,
        via_detach: bool,
    ) -> Result<usize, Vec<Val>> {
        // Queue-RAM parity injection: flip a bit in the first argument word
        // as the entry is written. Parity checking catches it at dispatch.
        // The injection draw happens before the capacity check so fault
        // sequences are unchanged by the admission refactor.
        let mut args = args;
        let mut poisoned = false;
        if let Some(rt) = self.fault_rt.as_deref_mut() {
            if let Some(bit) = rt.on_spawn() {
                self.faults_injected += 1;
                poisoned = true;
                if let Some(first) = args.first_mut() {
                    *first = Val::Int(val_bits(*first) ^ (1u64 << (bit % 64)));
                }
            }
        }
        let u = &mut self.units[unit];
        let Some(slot) = u.free.pop() else {
            return Err(args);
        };
        u.entries[slot] = Some(QueueEntry {
            args,
            parent,
            call_ret,
            children: 0,
            waiting_sync: false,
            saved: None,
            ready_at: now + self.cfg.spawn_cost,
            spawned_at: now,
            dispatched_once: false,
            host,
            via_detach,
            poisoned,
        });
        u.ready.push(slot);
        self.record(now, unit, slot, SimEventKind::Spawned { parent });
        Ok(slot)
    }

    fn dispatch(&mut self, unit: usize, now: u64) -> Result<(), SimError> {
        loop {
            let u = &mut self.units[unit];
            let Some(tile_idx) = u.tiles.iter().position(|t| t.accepts_dispatch(now)) else {
                return Ok(());
            };
            // LIFO scan for a dispatchable entry.
            let Some(pos) = u
                .ready
                .iter()
                .rposition(|&s| u.entries[s].as_ref().is_some_and(|e| e.ready_at <= now))
            else {
                return Ok(());
            };
            let slot = u.ready.remove(pos);
            // invariant: the ready list only holds slots whose entry is
            // occupied; entries are cleared strictly after leaving it.
            let entry = u.entries[slot].as_mut().expect("ready entry exists");
            if entry.poisoned && self.cfg.tolerance.parity {
                // Parity mismatch on queue-RAM read: detected, never
                // silently executed with corrupted arguments.
                return Err(SimError::QueueParity { unit: u.name.clone(), slot });
            }
            if !entry.dispatched_once {
                entry.dispatched_once = true;
                if entry.via_detach {
                    let lat = now - entry.spawned_at;
                    self.total_spawn_latency += lat;
                    self.min_spawn_latency = self.min_spawn_latency.min(lat);
                }
            }
            let exec = match entry.saved.take() {
                Some(mut saved) => {
                    if let Some(rb) = saved.resume_block.take() {
                        let idx = u.block_index[&rb];
                        let old = u.dfg.blocks[saved.block_idx].block;
                        saved.prev_block = Some(old);
                        saved.block_idx = idx;
                        saved.nodes = vec![NodeState::fresh(); u.dfg.blocks[idx].nodes.len()];
                        saved.block_start = now;
                    }
                    *saved
                }
                None => {
                    let dfg = Rc::clone(&u.dfg);
                    let env: HashMap<ValueId, Val> =
                        dfg.args.iter().copied().zip(entry.args.iter().copied()).collect();
                    let entry_idx = u.block_index[&dfg.entry];
                    Exec {
                        slot,
                        home: unit,
                        block_idx: entry_idx,
                        prev_block: None,
                        block_start: now,
                        steal_until: 0,
                        nodes: vec![NodeState::fresh(); dfg.blocks[entry_idx].nodes.len()],
                        env,
                        resume_block: None,
                    }
                }
            };
            let slot = exec.slot;
            u.tiles[tile_idx].exec = Some(exec);
            self.progress = true;
            self.record(now, unit, slot, SimEventKind::Dispatched { tile: tile_idx });
        }
    }

    /// Cross-unit work stealing. Runs strictly after every unit's own
    /// dispatch pass, so the owner always wins a same-cycle pop/steal race
    /// and an entry can never dispatch twice. Each tile still idle after
    /// owner dispatch probes sibling queues in its unit's deterministic
    /// round-robin order and claims the **oldest** ready, never-dispatched
    /// entry (the owner dispatches LIFO, so thieves take the opposite end
    /// of the queue). The stolen instance pays the configured steal
    /// latency before its first node can issue, and borrows its home
    /// unit's memory ports — stealing shares compute tiles, not the
    /// arbitration network. Queue bookkeeping (entry, join counters,
    /// completion) stays with the victim via [`Exec::home`]. Every unit
    /// reserves one tile for its own queue (so single-tile units never
    /// steal): lending the last tile lets a blocked stolen instance starve
    /// the owner's drain path into a deadlock.
    fn steal_pass(&mut self, now: u64) {
        // invariant: the caller gates this pass on `cfg.steal`.
        let latency = self.cfg.steal.expect("steal pass requires steal config").latency;
        let nunits = self.units.len();
        if nunits < 2 {
            return;
        }
        for thief in 0..nunits {
            // A unit never lends its last tile: at least one tile must stay
            // free of stolen work so the unit's own queue can always drain.
            // Without the reservation a stolen instance that blocks spawning
            // into the thief unit's own full queue holds the only tile that
            // could empty it — a deadlock the seed schedule cannot reach.
            let mut lent = self.units[thief]
                .tiles
                .iter()
                .filter(|t| t.exec.as_ref().is_some_and(|e| e.home != thief))
                .count();
            while let Some(tile_idx) =
                self.units[thief].tiles.iter().position(|t| t.accepts_dispatch(now))
            {
                if lent + 1 >= self.units[thief].tiles.len() {
                    break;
                }
                let mut claimed = false;
                for victim in self.steal_ports[thief].probe_order(thief, nunits) {
                    let v = &self.units[victim];
                    // Oldest ready entry first; suspended contexts and
                    // poisoned entries stay home (parity is the owner's
                    // check, saved state is bound to the home datapath).
                    let Some(pos) = v.ready.iter().position(|&s| {
                        v.entries[s]
                            .as_ref()
                            .is_some_and(|e| e.ready_at <= now && e.saved.is_none() && !e.poisoned)
                    }) else {
                        continue;
                    };
                    let slot = self.units[victim].ready.remove(pos);
                    let u = &mut self.units[victim];
                    // invariant: the ready list only holds occupied slots.
                    let entry = u.entries[slot].as_mut().expect("ready entry exists");
                    if !entry.dispatched_once {
                        entry.dispatched_once = true;
                        if entry.via_detach {
                            let lat = now - entry.spawned_at;
                            self.total_spawn_latency += lat;
                            self.min_spawn_latency = self.min_spawn_latency.min(lat);
                        }
                    }
                    let dfg = Rc::clone(&u.dfg);
                    let env: HashMap<ValueId, Val> =
                        dfg.args.iter().copied().zip(entry.args.iter().copied()).collect();
                    let entry_idx = u.block_index[&dfg.entry];
                    let exec = Exec {
                        slot,
                        home: victim,
                        block_idx: entry_idx,
                        prev_block: None,
                        block_start: now + latency,
                        steal_until: now + latency,
                        nodes: vec![NodeState::fresh(); dfg.blocks[entry_idx].nodes.len()],
                        env,
                        resume_block: None,
                    };
                    self.units[thief].tiles[tile_idx].exec = Some(exec);
                    self.steal_ports[thief].record_steal(victim);
                    self.progress = true;
                    self.record(
                        now,
                        victim,
                        slot,
                        SimEventKind::Stolen { by: thief, tile: tile_idx },
                    );
                    self.record(now, victim, slot, SimEventKind::Dispatched { tile: tile_idx });
                    lent += 1;
                    claimed = true;
                    break;
                }
                if !claimed {
                    // One failed probe round per thief per cycle: the
                    // victim queues cannot change again within this pass.
                    self.steal_ports[thief].record_failure();
                    break;
                }
            }
        }
    }

    // ---- responses ----------------------------------------------------------

    /// Pass a memory response through the fault runtime's out-demux model
    /// before delivering it: the response may be dropped, duplicated,
    /// bit-flipped, or delayed. Fault-free runs take the first branch.
    fn route_with_faults(&mut self, resp: MemResp, now: u64) {
        let fault = match self.fault_rt.as_deref_mut() {
            Some(rt) => rt.on_response(),
            None => RespFault::None,
        };
        match fault {
            RespFault::None => {
                self.route_response(resp, now);
                self.progress = true;
            }
            RespFault::Drop => {
                // The request's `ReqMeta` stays in place; once its deadline
                // lapses the retry scan re-issues it (or fails typed).
                self.faults_injected += 1;
            }
            RespFault::Duplicate => {
                self.faults_injected += 1;
                self.route_response(resp, now);
                // The second copy finds no `ReqMeta` and is discarded as
                // spurious.
                self.route_response(resp, now);
                self.progress = true;
            }
            RespFault::Corrupt(bit) => {
                self.faults_injected += 1;
                if self.cfg.tolerance.ecc {
                    // ECC detects the flip; discard the word and re-fetch.
                    self.ecc_retries += 1;
                    self.retry_request(resp.id.0, now);
                } else {
                    let mut resp = resp;
                    resp.rdata ^= 1u64 << (bit % 64);
                    self.route_response(resp, now);
                    self.progress = true;
                }
            }
            RespFault::Delay(cycles) => {
                self.faults_injected += 1;
                if let Some(rt) = self.fault_rt.as_deref_mut() {
                    rt.delayed.push((now + cycles, resp));
                }
            }
        }
    }

    fn route_response(&mut self, resp: tapas_mem::MemResp, now: u64) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.req_class.remove(&resp.id.0);
        }
        let Some(target) = self.req_map.remove(&resp.id.0) else {
            // No outstanding request behind this id: a duplicated grant, a
            // late original overtaken by its retry, or a delayed copy that
            // outlived its requester. Discarding is safe — workloads are
            // determinacy-race-free, so a retried access returns the same
            // data the stale response carried.
            self.spurious_responses += 1;
            return;
        };
        match target.kind {
            ReqKind::Tile => {}
            // The arena write's ack needs no action: the entry already
            // sits in the overflow list.
            ReqKind::SpillWrite => return,
            ReqKind::RefillRead => {
                self.install_refill(target.unit, now);
                return;
            }
        }
        let Some((home, block_idx)) =
            self.units[target.unit].tiles[target.tile].exec.as_ref().map(|e| (e.home, e.block_idx))
        else {
            // invariant: a task with in-flight memory never suspends (the
            // call-spawn quiesce check) and quarantine drains outstanding
            // requests before re-parking, so the tile must hold the task.
            panic!("memory response for an empty tile (suspension invariant broken)");
        };
        // A stolen instance executes its *home* unit's dataflow graph.
        let dfg = Rc::clone(&self.units[home].dfg);
        let func = self.units[home].func;
        let node = &dfg.blocks[block_idx].nodes[target.node];
        let value = match &node.op {
            NodeOp::Load { .. } => Some(load_value(self.module.function(func), node, resp.rdata)),
            NodeOp::Store { .. } => None,
            // invariant: request ids are only minted by issue_mem for
            // Load/Store nodes, so a response can never target another op.
            other => panic!("memory response for non-memory node {other:?}"),
        };
        let exec = self.units[target.unit].tiles[target.tile]
            .exec
            .as_mut()
            .expect("tile occupancy checked above");
        let ns = &mut exec.nodes[target.node];
        ns.done_at = now;
        ns.value = value;
        if let (Some(r), Some(v)) = (node.result, ns.value) {
            exec.env.insert(r, v);
        }
    }

    // ---- fault recovery -----------------------------------------------------

    /// Fire the tile stall/wedge faults scheduled for this cycle and mark
    /// over-budget tiles for quarantine.
    fn apply_tile_faults(&mut self, now: u64) {
        let due = match self.fault_rt.as_deref_mut() {
            Some(rt) => rt.due_tile_faults(now),
            None => Vec::new(),
        };
        for ev in due {
            self.faults_injected += 1;
            let budget = self.cfg.tolerance.tile_fault_budget;
            let quarantine = self.cfg.tolerance.quarantine;
            let t = &mut self.units[ev.unit].tiles[ev.tile];
            if t.fenced {
                continue;
            }
            t.faulted_at = now;
            if ev.wedge {
                t.stall_until = u64::MAX;
                // A wedge never recovers: force it past any budget so
                // quarantine (when armed) always fences the tile.
                t.fault_count = t.fault_count.max(budget.saturating_add(1));
            } else {
                t.stall_until = t.stall_until.max(now + ev.cycles);
                t.fault_count += 1;
            }
            if quarantine && t.fault_count > budget {
                t.quarantine_pending = true;
            }
        }
    }

    /// Fence tiles that exhausted their fault budget once their outstanding
    /// memory drains, re-parking any resident task so it resumes on a
    /// healthy tile. Degrades gracefully while at least one tile survives.
    fn process_quarantines(&mut self, now: u64) -> Result<(), SimError> {
        for unit in 0..self.units.len() {
            for tile in 0..self.units[unit].tiles.len() {
                if !self.units[unit].tiles[tile].quarantine_pending {
                    continue;
                }
                // Outstanding responses are routed by (unit, tile); wait
                // for them to drain so none lands on the tile's successor.
                if self.req_map.values().any(|m| m.unit == unit && m.tile == tile) {
                    continue;
                }
                let t = &mut self.units[unit].tiles[tile];
                t.quarantine_pending = false;
                t.fenced = true;
                self.quarantined_tiles += 1;
                if let Some(exec) = t.exec.take() {
                    // Re-park the in-flight instance into its *home*
                    // unit's queue (a stolen instance may be fenced on a
                    // foreign tile); its saved context (including
                    // completed node results) re-dispatches wherever a
                    // healthy tile frees up.
                    let slot = exec.slot;
                    let home = exec.home;
                    // invariant: a running exec always back-references the
                    // queue entry it was dispatched from, and that entry is
                    // not freed until the task completes.
                    let entry =
                        self.units[home].entries[slot].as_mut().expect("running entry exists");
                    entry.saved = Some(Box::new(exec));
                    entry.ready_at = now + 1;
                    self.units[home].ready.push(slot);
                }
                self.progress = true;
                let u = &self.units[unit];
                if u.tiles.iter().all(|t| t.fenced) {
                    return Err(SimError::AllTilesFailed { unit: u.name.clone() });
                }
            }
        }
        Ok(())
    }

    /// Re-issue the request behind `id` under a fresh id with a backed-off
    /// deadline. The old id is forgotten, so a late original response is
    /// discarded as spurious rather than delivered twice.
    fn retry_request(&mut self, id: u64, now: u64) {
        let Some(meta) = self.req_map.remove(&id) else {
            return;
        };
        if let Some(p) = self.prof.as_deref_mut() {
            p.req_class.remove(&id);
        }
        let attempts = meta.attempts + 1;
        let mut req = meta.req;
        req.id = ReqId(self.next_req);
        // Exponential backoff, capped so the deadline arithmetic cannot
        // overflow even after many retries.
        let backoff = self.cfg.tolerance.mem_timeout << u64::from(attempts.min(6));
        if self.databox.enqueue(req, now) {
            self.next_req += 1;
            self.req_map
                .insert(req.id.0, ReqMeta { req, deadline: now + backoff, attempts, ..meta });
        } else {
            // Databox queue full this cycle: keep the original id and poll
            // again next cycle without consuming a retry attempt.
            self.req_map.insert(id, ReqMeta { deadline: now + 1, ..meta });
        }
        self.progress = true;
    }

    /// Find outstanding requests past their deadline and recover: re-issue
    /// them (bounded retries) or fail with a typed error when retries are
    /// exhausted or recovery is disabled.
    fn scan_retries(&mut self, now: u64) -> Result<(), SimError> {
        let tol = self.cfg.tolerance;
        if !tol.mem_retry && tol.watchdog_timeout.is_none() {
            return Ok(());
        }
        // Collect then sort: `HashMap` iteration order must never leak
        // into simulated behaviour (determinism).
        let mut due: Vec<u64> =
            self.req_map.iter().filter(|(_, m)| m.deadline <= now).map(|(&id, _)| id).collect();
        due.sort_unstable();
        for id in due {
            let meta = self.req_map[&id];
            if !tol.mem_retry {
                // Watchdog-only mode: a lost response is detected, not
                // retried.
                return Err(SimError::WatchdogTimeout {
                    unit: self.units[meta.unit].name.clone(),
                    tile: meta.tile,
                    at: now,
                    waiting_on: WaitCause::Memory { addr: meta.req.addr, attempts: meta.attempts },
                });
            }
            if meta.attempts >= tol.max_mem_retries {
                return Err(SimError::MemRetryExhausted {
                    unit: self.units[meta.unit].name.clone(),
                    tile: meta.tile,
                    addr: meta.req.addr,
                    attempts: meta.attempts,
                });
            }
            self.mem_retries += 1;
            self.retry_request(id, now);
        }
        Ok(())
    }

    /// Release responses an injected delay has been holding back.
    fn deliver_delayed(&mut self, now: u64) {
        let due = match self.fault_rt.as_deref_mut() {
            Some(rt) => rt.due_delayed(now),
            None => Vec::new(),
        };
        for resp in due {
            self.route_response(resp, now);
            self.progress = true;
        }
    }

    /// Detect tiles wedged past the watchdog window. Quarantine normally
    /// fences a wedge first; the watchdog is the backstop when quarantine
    /// is disabled (or the fence cannot drain).
    fn check_watchdog(&mut self, now: u64) -> Result<(), SimError> {
        let Some(window) = self.cfg.tolerance.watchdog_timeout else {
            return Ok(());
        };
        for u in &self.units {
            for (ti, t) in u.tiles.iter().enumerate() {
                if t.wedged() && !t.fenced && !t.quarantine_pending && now - t.faulted_at >= window
                {
                    return Err(SimError::WatchdogTimeout {
                        unit: u.name.clone(),
                        tile: ti,
                        at: now,
                        waiting_on: WaitCause::Fault,
                    });
                }
            }
        }
        Ok(())
    }

    /// Build the wait-for-graph diagnosis reported inside
    /// [`SimError::Deadlock`]: who waits on whom (and why), the cyclic
    /// dependency if one exists, queue occupancy, the oldest blocked task,
    /// and any wedged tiles.
    fn diagnose_deadlock(&self, _now: u64) -> DeadlockDiagnosis {
        let units: Vec<UnitWaitState> = self
            .units
            .iter()
            .map(|u| UnitWaitState {
                name: u.name.clone(),
                occupancy: u.occupancy(),
                capacity: u.entries.len(),
                fenced_tiles: u.tiles.iter().filter(|t| t.fenced).count(),
            })
            .collect();
        // Wait-for edges between task units. A unit waits on another when
        // one of its live entries is suspended on that unit: a parent
        // syncing on children, a caller awaiting a callee, or a detach /
        // call-spawn backpressured by a full target queue.
        let mut edges: Vec<WaitEdge> = Vec::new();
        let mut add = |from: usize, to: usize, kind: WaitKind| {
            if !edges.iter().any(|e| e.from == from && e.to == to && e.kind == kind) {
                edges.push(WaitEdge { from, to, kind });
            }
        };
        for (ui, u) in self.units.iter().enumerate() {
            for entry in u.entries.iter().flatten() {
                if let Some(cr) = entry.call_ret {
                    // This entry is a callee: its caller waits on us.
                    add(cr.unit, ui, WaitKind::Call);
                }
                if entry.waiting_sync {
                    // The children of (ui, slot) live in child units; find
                    // them by parent backlink.
                    for (ci, cu) in self.units.iter().enumerate() {
                        let has_child = cu
                            .entries
                            .iter()
                            .flatten()
                            .any(|ce| ce.parent.is_some_and(|(pu, _)| pu == ui) && ci != ui);
                        if has_child {
                            add(ui, ci, WaitKind::Join);
                        }
                    }
                }
            }
            // A full queue blocks every unit that spawns into it.
            if u.free.is_empty() {
                for (pi, pu) in self.units.iter().enumerate() {
                    if pi != ui && pu.entries.iter().flatten().any(|e| e.saved.is_some()) {
                        add(pi, ui, WaitKind::Spawn);
                    }
                }
            }
        }
        let cycle = find_cycle(self.units.len(), &edges);
        let oldest = self
            .units
            .iter()
            .enumerate()
            .flat_map(|(ui, u)| {
                u.entries
                    .iter()
                    .enumerate()
                    .filter_map(move |(slot, e)| e.as_ref().map(|e| (ui, slot, e.spawned_at)))
            })
            .min_by_key(|&(_, _, at)| at)
            .map(|(unit, slot, spawned_at)| BlockedTask { unit, slot, spawned_at });
        let wedged: Vec<(usize, usize)> = self
            .units
            .iter()
            .enumerate()
            .flat_map(|(ui, u)| {
                u.tiles
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.wedged() || t.fenced)
                    .map(move |(ti, _)| (ui, ti))
            })
            .collect();
        DeadlockDiagnosis { units, cycle, oldest, wedged }
    }

    // ---- tile execution -------------------------------------------------------

    fn advance_tile(&mut self, unit: usize, tile: usize, now: u64) -> Result<(), SimError> {
        if self.units[unit].tiles[tile].frozen(now)
            || self.units[unit].tiles[tile].quarantine_pending
        {
            // A frozen or draining tile holds its state but makes no
            // forward progress this cycle.
            return Ok(());
        }
        let Some(mut exec) = self.units[unit].tiles[tile].exec.take() else {
            return Ok(());
        };
        if now < exec.block_start {
            self.units[unit].tiles[tile].exec = Some(exec);
            return Ok(());
        }
        // `unit`/`tile` locate the physical datapath (memory ports, busy
        // state); `home` owns the task's queue entry, DFG and events. They
        // differ only for instances claimed by the work-stealing pass.
        let home = exec.home;
        let dfg = Rc::clone(&self.units[home].dfg);
        let blk = &dfg.blocks[exec.block_idx];

        // Issue whatever has become ready.
        for idx in 0..blk.nodes.len() {
            if exec.nodes[idx].issued {
                continue;
            }
            let node = &blk.nodes[idx];
            if !self.deps_ready(node, &exec, now) {
                continue;
            }
            match &node.op {
                NodeOp::Load { size } => {
                    let addr = self.operand_val(&node.operands[0], &exec).as_int();
                    if self.enqueue_mem(
                        unit,
                        tile,
                        home,
                        exec.block_idx,
                        idx,
                        addr,
                        *size,
                        MemOpKind::Read,
                        0,
                        now,
                    ) {
                        exec.nodes[idx].issued = true;
                        self.progress = true;
                        self.note_issue(home, NodeClass::Memory);
                    }
                }
                NodeOp::Store { size } => {
                    let addr = self.operand_val(&node.operands[0], &exec).as_int();
                    let data = val_bits(self.operand_val(&node.operands[1], &exec));
                    if self.enqueue_mem(
                        unit,
                        tile,
                        home,
                        exec.block_idx,
                        idx,
                        addr,
                        *size,
                        MemOpKind::Write,
                        data,
                        now,
                    ) {
                        exec.nodes[idx].issued = true;
                        self.progress = true;
                        self.note_issue(home, NodeClass::Memory);
                    }
                }
                NodeOp::CallSpawn { callee } => {
                    // Quiesce: no other node may be in flight while the
                    // instance suspends (memory responses are tile-routed).
                    let in_flight = exec
                        .nodes
                        .iter()
                        .enumerate()
                        .any(|(j, n)| j != idx && n.issued && !n.done(now));
                    if in_flight {
                        continue;
                    }
                    let args: Vec<Val> =
                        node.operands.iter().map(|o| self.operand_val(o, &exec)).collect();
                    let callee_unit = self.func_root[callee.0 as usize];
                    // The return lands on the *home* entry: a stolen
                    // caller suspends back into its own unit's queue.
                    let cr = CallRet { unit: home, slot: exec.slot, node: idx };
                    match self.alloc_entry(callee_unit, args, None, Some(cr), now, false, false) {
                        Ok(_) => {
                            self.calls += 1;
                            exec.nodes[idx].issued = true;
                            self.note_issue(home, NodeClass::Spawn);
                            // Suspend: context returns to the queue entry,
                            // the tile frees for other ready tasks.
                            let slot = exec.slot;
                            self.units[home].entries[slot]
                                .as_mut()
                                .expect("running entry exists")
                                .saved = Some(Box::new(exec));
                            self.record(now, home, slot, SimEventKind::CallWait);
                            self.mark_worked(unit, tile);
                            return Ok(());
                        }
                        Err(args) => {
                            let adm = self.cfg.admission;
                            let args = if adm.is_some_and(|a| a.spill) {
                                match self.try_spill(callee_unit, args, None, Some(cr), false, now)
                                {
                                    Ok(()) => {
                                        // A spilled callee behaves like an
                                        // accepted spawn: the caller suspends
                                        // until it refills, runs and returns.
                                        self.calls += 1;
                                        exec.nodes[idx].issued = true;
                                        self.note_issue(home, NodeClass::Spawn);
                                        let slot = exec.slot;
                                        self.units[home].entries[slot]
                                            .as_mut()
                                            .expect("running entry exists")
                                            .saved = Some(Box::new(exec));
                                        self.record(now, home, slot, SimEventKind::CallWait);
                                        self.mark_worked(unit, tile);
                                        return Ok(());
                                    }
                                    Err(a) => a,
                                }
                            } else {
                                args
                            };
                            if adm.is_some_and(|a| a.inline_spawn) {
                                // Work-first degradation: run the callee to
                                // completion on this tile, charging its
                                // modeled cost as tile busy time.
                                let (ret, cost) = self.exec_inline(callee_unit, args, 0)?;
                                self.calls += 1;
                                let ns = &mut exec.nodes[idx];
                                ns.issued = true;
                                ns.done_at = now + cost;
                                ns.value = Some(ret.unwrap_or(Val::Int(0)));
                                if let (Some(r), Some(v)) = (node.result, ns.value) {
                                    exec.env.insert(r, v);
                                }
                                self.note_issue(home, NodeClass::Spawn);
                                self.units[unit].tiles[tile].inline_busy_until = now + cost;
                                self.progress = true;
                            } else {
                                // Callee queue full: retry next cycle.
                                self.units[home].stats.spawn_stalls += 1;
                                self.units[callee_unit].spawn_refused = true;
                            }
                        }
                    }
                }
                _ => {
                    let (value, lat) = self.eval_fixed(node, &exec)?;
                    self.progress = true;
                    let class = node_class(&node.op);
                    let ns = &mut exec.nodes[idx];
                    ns.issued = true;
                    ns.done_at = now + u64::from(lat);
                    ns.value = value;
                    if let (Some(r), Some(v)) = (node.result, ns.value) {
                        exec.env.insert(r, v);
                    }
                    self.note_issue(home, class);
                }
            }
        }

        // Terminator fires once every node in the block has drained.
        let all_done = exec.nodes.iter().all(|n| n.done(now));
        if !all_done {
            self.units[unit].tiles[tile].exec = Some(exec);
            return Ok(());
        }
        match blk.term.clone() {
            TermInfo::Br(t) => {
                self.enter_block(&mut exec, home, t, now + self.cfg.block_transition);
                self.units[unit].tiles[tile].exec = Some(exec);
                self.progress = true;
            }
            TermInfo::CondBr { cond, if_true, if_false } => {
                let c = self.operand_val(&cond, &exec).as_int() & 1;
                let t = if c == 1 { if_true } else { if_false };
                self.enter_block(&mut exec, home, t, now + self.cfg.block_transition);
                self.units[unit].tiles[tile].exec = Some(exec);
                self.progress = true;
            }
            TermInfo::Ret(v) => {
                let value = v.map(|o| self.operand_val(&o, &exec));
                self.finish_instance(home, exec.slot, value, now);
                self.mark_worked(unit, tile);
            }
            TermInfo::Reattach => {
                self.finish_instance(home, exec.slot, None, now);
                self.mark_worked(unit, tile);
            }
            TermInfo::Detach { child, args, cont } => {
                let child_unit = self.unit_of[&(self.units[home].func.0, child.0)];
                let arg_vals: Vec<Val> = args.iter().map(|o| self.operand_val(o, &exec)).collect();
                let parent = Some((home, exec.slot));
                match self.alloc_entry(child_unit, arg_vals, parent, None, now, false, true) {
                    Ok(_) => {
                        self.spawns += 1;
                        self.note_issue(home, NodeClass::Spawn);
                        self.units[home].entries[exec.slot]
                            .as_mut()
                            .expect("running entry exists")
                            .children += 1;
                        self.enter_block(&mut exec, home, cont, now + 1);
                        self.units[unit].tiles[tile].exec = Some(exec);
                    }
                    Err(arg_vals) => {
                        let adm = self.cfg.admission;
                        let arg_vals = if adm.is_some_and(|a| a.spill) {
                            match self.try_spill(child_unit, arg_vals, parent, None, true, now) {
                                Ok(()) => {
                                    // A spilled child still counts against
                                    // the parent's join counter; it completes
                                    // after refilling.
                                    self.spawns += 1;
                                    self.note_issue(home, NodeClass::Spawn);
                                    self.units[home].entries[exec.slot]
                                        .as_mut()
                                        .expect("running entry exists")
                                        .children += 1;
                                    self.enter_block(&mut exec, home, cont, now + 1);
                                    self.units[unit].tiles[tile].exec = Some(exec);
                                    return Ok(());
                                }
                                Err(a) => a,
                            }
                        } else {
                            arg_vals
                        };
                        if adm.is_some_and(|a| a.inline_spawn) {
                            // Work-first degradation: execute the child
                            // serially now; the continuation starts once its
                            // modeled cost has elapsed.
                            let (_, cost) = self.exec_inline(child_unit, arg_vals, 0)?;
                            self.spawns += 1;
                            self.note_issue(home, NodeClass::Spawn);
                            let resume = now + 1 + cost;
                            self.units[unit].tiles[tile].inline_busy_until = resume;
                            self.enter_block(&mut exec, home, cont, resume);
                            self.units[unit].tiles[tile].exec = Some(exec);
                            self.progress = true;
                        } else {
                            // Ready-valid backpressure: retry next cycle.
                            self.units[child_unit].stats.spawn_stalls += 1;
                            self.units[child_unit].spawn_refused = true;
                            self.units[unit].tiles[tile].exec = Some(exec);
                        }
                    }
                }
            }
            TermInfo::Sync(cont) => {
                let slot = exec.slot;
                // invariant: exec.slot back-references the live queue entry
                // this instance was dispatched from.
                let entry = self.units[home].entries[slot].as_mut().expect("running entry exists");
                if entry.children == 0 {
                    self.enter_block(&mut exec, home, cont, now + self.cfg.sync_cost);
                    self.units[unit].tiles[tile].exec = Some(exec);
                } else {
                    // SYNC state: context parks in the queue entry.
                    entry.waiting_sync = true;
                    exec.resume_block = Some(cont);
                    entry.saved = Some(Box::new(exec));
                    self.record(now, home, slot, SimEventKind::SyncWait);
                    self.mark_worked(unit, tile);
                }
            }
        }
        Ok(())
    }

    fn enter_block(&self, exec: &mut Exec, unit: usize, block: BlockId, at: u64) {
        let u = &self.units[unit];
        let old = u.dfg.blocks[exec.block_idx].block;
        // invariant: lowering only emits branch targets inside the task's
        // own DFG; block ids never cross a task boundary.
        let idx = *u
            .block_index
            .get(&block)
            .unwrap_or_else(|| panic!("branch to block {block} outside task {}", u.name));
        exec.prev_block = Some(old);
        exec.block_idx = idx;
        exec.nodes = vec![NodeState::fresh(); u.dfg.blocks[idx].nodes.len()];
        exec.block_start = at;
    }

    fn finish_instance(&mut self, unit: usize, slot: usize, value: Option<Val>, now: u64) {
        self.progress = true;
        self.record(now, unit, slot, SimEventKind::Completed);
        // invariant: only a running exec reaches finish_instance, and its
        // slot stays occupied for the task's whole lifetime.
        let entry = self.units[unit].entries[slot].take().expect("finishing live entry");
        debug_assert_eq!(entry.children, 0, "task completed with outstanding children");
        self.units[unit].free.push(slot);
        self.units[unit].stats.tasks_executed += 1;
        self.deliver_completion(entry.parent, entry.call_ret, value, now);
        if entry.host {
            self.host_result = Some(value);
        }
    }

    /// Deliver a finished task's side effects to its waiters: resume a
    /// suspended caller with the return value, and decrement the parent's
    /// join counter (waking its `sync` at zero). Shared by the queue path
    /// ([`finish_instance`](Self::finish_instance)) and the inline
    /// deadlock-recovery path, where the task never held a queue entry.
    fn deliver_completion(
        &mut self,
        parent: Option<(usize, usize)>,
        call_ret: Option<CallRet>,
        value: Option<Val>,
        now: u64,
    ) {
        if let Some(cr) = call_ret {
            let dfg = Rc::clone(&self.units[cr.unit].dfg);
            // invariant: a callee outlives its caller's queue entry — the
            // caller suspends (saved context parked) until the return lands.
            let caller = self.units[cr.unit].entries[cr.slot].as_mut().expect("caller entry alive");
            let saved = caller.saved.as_mut().expect("caller suspended on call");
            let ns = &mut saved.nodes[cr.node];
            ns.done_at = now;
            ns.value = value.or(Some(Val::Int(0)));
            // Propagate the return value into the caller's environment.
            let node_result = dfg.blocks[saved.block_idx].nodes[cr.node].result;
            if let (Some(r), Some(v)) = (node_result, saved.nodes[cr.node].value) {
                saved.env.insert(r, v);
            }
            caller.ready_at = now + 1;
            self.units[cr.unit].ready.push(cr.slot);
        }
        if let Some((pu, ps)) = parent {
            // invariant: reattach semantics — a parent cannot retire before
            // every detached child has completed.
            let p = self.units[pu].entries[ps]
                .as_mut()
                .expect("parent entry alive during child completion");
            p.children -= 1;
            if p.waiting_sync && p.children == 0 {
                p.waiting_sync = false;
                p.ready_at = now + self.cfg.sync_cost;
                self.units[pu].ready.push(ps);
            }
        }
    }

    // ---- helpers -----------------------------------------------------------

    fn deps_ready(&self, node: &DfgNode, exec: &Exec, now: u64) -> bool {
        let op_ready = |o: &Operand| match o {
            Operand::Local(i) => exec.nodes[*i].done(now),
            Operand::Env(_) | Operand::Imm(_) => true,
        };
        let data_ok = match &node.op {
            // A phi's readiness depends only on the incoming edge taken.
            NodeOp::Phi { incomings } => {
                let prev = exec.prev_block;
                incomings
                    .iter()
                    .find(|(b, _)| Some(*b) == prev)
                    .map(|(_, o)| op_ready(o))
                    .unwrap_or(false)
            }
            _ => node.operands.iter().all(op_ready),
        };
        data_ok && node.order_deps.iter().all(|&d| exec.nodes[d].done(now))
    }

    fn operand_val(&self, o: &Operand, exec: &Exec) -> Val {
        match o {
            // invariant: dataflow firing order — a node only issues once
            // every operand producer has completed, and the environment is
            // populated at dispatch with every live-in the DFG references.
            Operand::Local(i) => {
                exec.nodes[*i].value.unwrap_or_else(|| panic!("reading unfinished node {i}"))
            }
            Operand::Env(v) => {
                *exec.env.get(v).unwrap_or_else(|| panic!("value {v} missing from TXU environment"))
            }
            Operand::Imm(c) => const_val(c),
        }
    }

    fn eval_fixed(&self, node: &DfgNode, exec: &Exec) -> Result<(Option<Val>, u32), SimError> {
        self.eval_pure(node, &|o| self.operand_val(o, exec), exec.prev_block)
    }

    /// Evaluate a fixed-latency dataflow node given an operand resolver.
    /// Shared by the cycle-level tile path ([`Self::eval_fixed`]) and the
    /// functional inline executor, which resolve operands from different
    /// state.
    fn eval_pure(
        &self,
        node: &DfgNode,
        ov: &dyn Fn(&Operand) -> Val,
        prev_block: Option<BlockId>,
    ) -> Result<(Option<Val>, u32), SimError> {
        let v = |i: usize| ov(&node.operands[i]);
        let value = match &node.op {
            NodeOp::Alu(op) => {
                Some(eval_bin(*op, v(0), v(1), node.width).map_err(|_| SimError::DivByZero)?)
            }
            NodeOp::FAlu(op) => Some(eval_fbin(*op, v(0), v(1))),
            NodeOp::Cmp { pred, width } => {
                Some(Val::Int(eval_cmp(*pred, v(0), v(1), *width) as u64))
            }
            NodeOp::FCmp(pred) => Some(Val::Int(eval_fcmp(*pred, v(0), v(1)) as u64)),
            NodeOp::Select => Some(if v(0).as_int() & 1 == 1 { v(1) } else { v(2) }),
            NodeOp::Cast { kind, from_width, to_width } => {
                Some(eval_cast(*kind, v(0), *from_width, *to_width))
            }
            NodeOp::Gep { steps } => {
                let mut addr = v(0).as_int();
                let mut next_operand = 1usize;
                for s in steps {
                    match s {
                        tapas_dfg::GepStep::Fixed(k) => addr = addr.wrapping_add(*k),
                        tapas_dfg::GepStep::Scaled { stride, .. } => {
                            let ix = ov(&node.operands[next_operand]).as_int();
                            next_operand += 1;
                            addr = addr.wrapping_add(ix.wrapping_mul(*stride));
                        }
                    }
                }
                Some(Val::Int(addr))
            }
            NodeOp::Phi { incomings } => {
                // invariant: lowering never places a phi in an entry block,
                // and every predecessor edge carries an incoming value.
                let prev = prev_block.expect("phi evaluated in an entry block");
                let (_, o) = incomings
                    .iter()
                    .find(|(b, _)| *b == prev)
                    .expect("phi has incoming for edge taken");
                Some(ov(o))
            }
            NodeOp::Load { .. } | NodeOp::Store { .. } | NodeOp::CallSpawn { .. } => {
                unreachable!("dynamic nodes handled by caller")
            }
        };
        Ok((value, node.latency))
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue_mem(
        &mut self,
        unit: usize,
        tile: usize,
        home: usize,
        block_idx: usize,
        node: usize,
        addr: u64,
        size: u8,
        kind: MemOpKind,
        wdata: u64,
        now: u64,
    ) -> bool {
        let h = &self.units[home];
        // Requests always use the *home* unit's port range: a stolen
        // instance borrows its home unit's memory bandwidth (the thief's
        // tile index is folded onto the home tile-slot ports, sharing that
        // port's queue), so stealing never changes the arbitration network
        // — response routing is by request id, not port. For a non-stolen
        // instance `home == unit` and this is exactly the seed port.
        let port = h.port_base
            + (tile % h.tiles.len()) * h.dfg.mem_ports
            + h.dfg.blocks[block_idx].nodes[node].mem_port.expect("memory node has a port");
        let id = ReqId(self.next_req);
        let req = MemReq { id, port, addr, size, kind, wdata };
        if self.databox.enqueue(req, now) {
            let deadline = self.initial_deadline(now);
            self.req_map.insert(
                id.0,
                ReqMeta { kind: ReqKind::Tile, unit, tile, node, req, deadline, attempts: 0 },
            );
            self.next_req += 1;
            true
        } else {
            false
        }
    }

    /// Deadline for a freshly issued request: the retry timeout when memory
    /// retry is armed, the watchdog window when only the watchdog is, and
    /// "never" on the fault-free fast path (so fault-free timing is
    /// untouched by recovery machinery).
    fn initial_deadline(&self, now: u64) -> u64 {
        if self.fault_rt.is_none() {
            return u64::MAX;
        }
        let tol = &self.cfg.tolerance;
        if tol.mem_retry {
            now + tol.mem_timeout
        } else if let Some(w) = tol.watchdog_timeout {
            now + w
        } else {
            u64::MAX
        }
    }

    // ---- bounded-resource admission control --------------------------------

    /// Park a refused spawn in the overflow arena: allocate an arena slot,
    /// push the modeled 8-byte write through the data box, and append the
    /// entry to the unit's overflow list. Hands the arguments back when
    /// the arena is exhausted or the data box refused the write this
    /// cycle, so the caller can fall through to the inline path.
    fn try_spill(
        &mut self,
        unit: usize,
        args: Vec<Val>,
        parent: Option<(usize, usize)>,
        call_ret: Option<CallRet>,
        via_detach: bool,
        now: u64,
    ) -> Result<(), Vec<Val>> {
        let addr = match self.spill_free.pop() {
            Some(a) => a,
            None if self.spill_next < self.spill_limit => {
                let a = self.spill_next;
                self.spill_next += 8;
                a
            }
            None => return Err(args),
        };
        let id = ReqId(self.next_req);
        let req = MemReq {
            id,
            port: self.units[unit].port_base,
            addr,
            size: 8,
            kind: MemOpKind::Write,
            wdata: args.first().copied().map(val_bits).unwrap_or(0),
        };
        if !self.databox.enqueue(req, now) {
            self.spill_free.push(addr);
            return Err(args);
        }
        self.next_req += 1;
        let deadline = self.initial_deadline(now);
        self.req_map.insert(
            id.0,
            ReqMeta {
                kind: ReqKind::SpillWrite,
                unit,
                tile: usize::MAX,
                node: usize::MAX,
                req,
                deadline,
                attempts: 0,
            },
        );
        self.units[unit].overflow.push_back(SpilledEntry {
            args,
            parent,
            call_ret,
            via_detach,
            spawned_at: now,
            addr,
        });
        self.spills += 1;
        self.progress = true;
        Ok(())
    }

    /// Start refills for units that have both a spilled entry and a free
    /// queue slot: reserve the slot and issue the modeled arena read. The
    /// entry is installed when the response arrives
    /// ([`Self::install_refill`]). Units are scanned in index order and at
    /// most one refill is outstanding per unit, keeping the schedule
    /// deterministic.
    fn pump_refills(&mut self, now: u64) {
        for unit in 0..self.units.len() {
            if self.units[unit].pending_refill.is_some()
                || self.units[unit].overflow.is_empty()
                || self.units[unit].free.is_empty()
            {
                continue;
            }
            let addr = self.units[unit].overflow.front().expect("nonempty overflow").addr;
            let id = ReqId(self.next_req);
            let req = MemReq {
                id,
                port: self.units[unit].port_base,
                addr,
                size: 8,
                kind: MemOpKind::Read,
                wdata: 0,
            };
            if !self.databox.enqueue(req, now) {
                continue;
            }
            self.next_req += 1;
            let deadline = self.initial_deadline(now);
            self.req_map.insert(
                id.0,
                ReqMeta {
                    kind: ReqKind::RefillRead,
                    unit,
                    tile: usize::MAX,
                    node: usize::MAX,
                    req,
                    deadline,
                    attempts: 0,
                },
            );
            let u = &mut self.units[unit];
            let entry = u.overflow.pop_front().expect("nonempty overflow");
            let slot = u.free.pop().expect("nonempty free list");
            u.pending_refill = Some(PendingRefill { slot, entry });
            self.progress = true;
        }
    }

    /// The arena read came back: install the spilled entry into its
    /// reserved queue slot as a freshly arrived spawn (original spawn time
    /// preserved for latency accounting) and return the arena slot.
    fn install_refill(&mut self, unit: usize, now: u64) {
        let spawn_cost = self.cfg.spawn_cost;
        let u = &mut self.units[unit];
        // invariant: refill request ids map 1:1 to the unit's single
        // outstanding refill.
        let PendingRefill { slot, entry } =
            u.pending_refill.take().expect("refill response with a pending refill");
        let SpilledEntry { args, parent, call_ret, via_detach, spawned_at, addr } = entry;
        u.entries[slot] = Some(QueueEntry {
            args,
            parent,
            call_ret,
            children: 0,
            waiting_sync: false,
            saved: None,
            ready_at: now + spawn_cost,
            spawned_at,
            dispatched_once: false,
            host: false,
            via_detach,
            poisoned: false,
        });
        u.ready.push(slot);
        self.spill_free.push(addr);
        self.refills += 1;
        self.record(now, unit, slot, SimEventKind::Spawned { parent });
    }

    /// Deadlock recovery: break a spawn-edge wait cycle by forcing the
    /// globally oldest spilled spawn down the inline path (even when
    /// `inline_spawn` is off — this is the break-glass mechanism that
    /// keeps `Deadlock` reserved for genuinely unrecoverable states).
    /// Returns `false` when nothing is spilled, i.e. the stall is not a
    /// spawn cycle this mechanism can break.
    fn recover_blocked_spawn(&mut self, now: u64) -> Result<bool, SimError> {
        let Some(unit) =
            (0..self.units.len()).filter(|&u| !self.units[u].overflow.is_empty()).min_by_key(
                |&u| self.units[u].overflow.front().map(|e| e.spawned_at).unwrap_or(u64::MAX),
            )
        else {
            return Ok(false);
        };
        let entry = self.units[unit].overflow.pop_front().expect("nonempty overflow");
        let SpilledEntry { args, parent, call_ret, addr, .. } = entry;
        self.spill_free.push(addr);
        let (value, _cost) = self.exec_inline(unit, args, 0)?;
        self.deliver_completion(parent, call_ret, value, now);
        self.progress = true;
        Ok(true)
    }

    /// Bounds/alignment check for an inline (functional) memory access,
    /// mirroring [`MemSystem::issue`]'s validation but bounded by the
    /// program-visible footprint (the overflow arena above it is reserved
    /// for the engine).
    fn check_inline_access(&self, unit: usize, addr: u64, size: u8) -> Result<(), SimError> {
        let bounds = if self.spill_base > 0 { self.spill_base } else { self.ms.data.len() as u64 };
        let fault = if !size.is_power_of_two() || size > 8 {
            Some(MemError::BadSize { size })
        } else if !addr.is_multiple_of(u64::from(size)) {
            Some(MemError::Misaligned { addr, size })
        } else if u128::from(addr) + u128::from(size) > u128::from(bounds) {
            Some(MemError::OutOfBounds { addr, size, mem_bytes: bounds as usize })
        } else {
            None
        };
        match fault {
            Some(fault) => Err(SimError::Memory {
                unit: Some(self.units[unit].name.clone()),
                tile: None,
                fault,
            }),
            None => Ok(()),
        }
    }

    /// Execute one dynamic instance of `unit`'s task functionally, on the
    /// spawning tile's behalf (Cilk-style work-first serial elision).
    /// Memory effects go straight through the functional store — the
    /// timing/functional split keeps [`MemSystem::data`] coherent with the
    /// cycle-level path — and the returned cost (accumulated node
    /// latencies, hit-latency per access, and spawn/sync/block-transition
    /// overheads) models the serial execution time the tile pays.
    fn exec_inline(
        &mut self,
        unit: usize,
        args: Vec<Val>,
        depth: usize,
    ) -> Result<(Option<Val>, u64), SimError> {
        if depth > 2048 {
            return Err(SimError::Unsupported(
                "inline spawn recursion exceeded 2048 frames".into(),
            ));
        }
        self.inline_spawns += 1;
        self.units[unit].stats.tasks_executed += 1;
        let dfg = Rc::clone(&self.units[unit].dfg);
        let func = self.units[unit].func;
        let hit = u64::from(self.ms.cache.config().hit_latency);
        let mut env: HashMap<ValueId, Val> =
            dfg.args.iter().copied().zip(args.iter().copied()).collect();
        let mut cost = 0u64;
        let mut prev_block: Option<BlockId> = None;
        let mut block_idx = self.units[unit].block_index[&dfg.entry];
        loop {
            let blk = &dfg.blocks[block_idx];
            let n = blk.nodes.len();
            let mut done = vec![false; n];
            let mut vals: Vec<Option<Val>> = vec![None; n];
            let mut remaining = n;
            while remaining > 0 {
                let mut progressed = false;
                for idx in 0..n {
                    if done[idx] {
                        continue;
                    }
                    let node = &blk.nodes[idx];
                    let op_ready = |o: &Operand| match o {
                        Operand::Local(i) => done[*i],
                        Operand::Env(_) | Operand::Imm(_) => true,
                    };
                    let data_ok = match &node.op {
                        NodeOp::Phi { incomings } => incomings
                            .iter()
                            .find(|(b, _)| Some(*b) == prev_block)
                            .map(|(_, o)| op_ready(o))
                            .unwrap_or(false),
                        _ => node.operands.iter().all(op_ready),
                    };
                    if !data_ok || !node.order_deps.iter().all(|&d| done[d]) {
                        continue;
                    }
                    let value = match &node.op {
                        NodeOp::Load { size } => {
                            let addr = resolve_inline(&node.operands[0], &vals, &env).as_int();
                            self.check_inline_access(unit, addr, *size)?;
                            let raw = self.ms.read_bits(addr, *size);
                            cost += hit;
                            Some(load_value(self.module.function(func), node, raw))
                        }
                        NodeOp::Store { size } => {
                            let addr = resolve_inline(&node.operands[0], &vals, &env).as_int();
                            let data = val_bits(resolve_inline(&node.operands[1], &vals, &env));
                            self.check_inline_access(unit, addr, *size)?;
                            self.ms.write_bits(addr, *size, data);
                            cost += hit;
                            None
                        }
                        NodeOp::CallSpawn { callee } => {
                            let cargs: Vec<Val> = node
                                .operands
                                .iter()
                                .map(|o| resolve_inline(o, &vals, &env))
                                .collect();
                            let callee_unit = self.func_root[callee.0 as usize];
                            let (r, c) = self.exec_inline(callee_unit, cargs, depth + 1)?;
                            cost += c + self.cfg.spawn_cost;
                            Some(r.unwrap_or(Val::Int(0)))
                        }
                        _ => {
                            let (v, lat) = self.eval_pure(
                                node,
                                &|o| resolve_inline(o, &vals, &env),
                                prev_block,
                            )?;
                            cost += u64::from(lat);
                            v
                        }
                    };
                    if let (Some(r), Some(v)) = (node.result, value) {
                        env.insert(r, v);
                    }
                    vals[idx] = value;
                    done[idx] = true;
                    remaining -= 1;
                    progressed = true;
                }
                if !progressed {
                    return Err(SimError::Unsupported(
                        "inline executor wedged on an unready dataflow node".into(),
                    ));
                }
            }
            let cur = blk.block;
            let term = blk.term.clone();
            let next = match term {
                TermInfo::Br(t) => t,
                TermInfo::CondBr { cond, if_true, if_false } => {
                    if resolve_inline(&cond, &vals, &env).as_int() & 1 == 1 {
                        if_true
                    } else {
                        if_false
                    }
                }
                TermInfo::Ret(v) => {
                    return Ok((v.map(|o| resolve_inline(&o, &vals, &env)), cost));
                }
                TermInfo::Reattach => return Ok((None, cost)),
                TermInfo::Detach { child, args: dargs, cont } => {
                    let cargs: Vec<Val> =
                        dargs.iter().map(|o| resolve_inline(o, &vals, &env)).collect();
                    let child_unit = self.unit_of[&(func.0, child.0)];
                    let (_, c) = self.exec_inline(child_unit, cargs, depth + 1)?;
                    cost += c + self.cfg.spawn_cost;
                    cont
                }
                TermInfo::Sync(cont) => {
                    // Children already ran synchronously above; the sync
                    // itself still pays its modeled cost.
                    cost += self.cfg.sync_cost;
                    cont
                }
            };
            cost += self.cfg.block_transition;
            prev_block = Some(cur);
            block_idx = self.units[unit].block_index[&next];
        }
    }
}

/// Find a directed cycle in the unit wait-for graph, returned as its edge
/// sequence (empty when the graph is acyclic).
fn find_cycle(n: usize, edges: &[WaitEdge]) -> Vec<WaitEdge> {
    fn dfs(
        v: usize,
        state: &mut [u8], // 0 = unvisited, 1 = on path, 2 = done
        path: &mut Vec<WaitEdge>,
        edges: &[WaitEdge],
    ) -> Option<usize> {
        state[v] = 1;
        for e in edges.iter().filter(|e| e.from == v) {
            if state[e.to] == 1 {
                path.push(*e);
                return Some(e.to);
            }
            if state[e.to] == 0 {
                path.push(*e);
                if let Some(root) = dfs(e.to, state, path, edges) {
                    return Some(root);
                }
                path.pop();
            }
        }
        state[v] = 2;
        None
    }
    let mut state = vec![0u8; n];
    let mut path: Vec<WaitEdge> = Vec::new();
    for v in 0..n {
        if state[v] == 0 {
            path.clear();
            if let Some(root) = dfs(v, &mut state, &mut path, edges) {
                let start = path.iter().position(|e| e.from == root).unwrap_or(0);
                return path[start..].to_vec();
            }
        }
    }
    Vec::new()
}

/// Resolve an operand during inline (functional) execution: a completed
/// local node's value, an environment binding, or an immediate.
fn resolve_inline(o: &Operand, vals: &[Option<Val>], env: &HashMap<ValueId, Val>) -> Val {
    match o {
        Operand::Local(i) => vals[*i].expect("local operand of a completed node"),
        Operand::Env(v) => *env.get(v).expect("env value bound before inline use"),
        Operand::Imm(c) => const_val(c),
    }
}

fn const_val(c: &Constant) -> Val {
    match c {
        Constant::Int { bits, .. } => Val::Int(*bits),
        Constant::F32(x) => Val::F32(*x),
        Constant::F64(x) => Val::F64(*x),
        Constant::NullPtr(_) => Val::Int(0),
    }
}

fn val_bits(v: Val) -> u64 {
    match v {
        Val::Int(x) => x,
        Val::F32(x) => u64::from(x.to_bits()),
        Val::F64(x) => x.to_bits(),
    }
}

fn load_value(f: &Function, node: &DfgNode, rdata: u64) -> Val {
    let ty = node.result.map(|r| f.value_ty(r).clone()).unwrap_or(Type::I64);
    match ty {
        Type::F32 => Val::F32(f32::from_bits(rdata as u32)),
        Type::F64 => Val::F64(f64::from_bits(rdata)),
        Type::Int(w) => Val::Int(mask_to_width(rdata, w)),
        _ => Val::Int(rdata),
    }
}

fn eval_cast(kind: CastKind, v: Val, from_w: u8, to_w: u8) -> Val {
    match kind {
        CastKind::ZExt => Val::Int(v.as_int()),
        CastKind::SExt => Val::Int(mask_to_width(sign_extend(v.as_int(), from_w) as u64, to_w)),
        CastKind::Trunc => Val::Int(mask_to_width(v.as_int(), to_w)),
        CastKind::SiToFp => {
            let s = sign_extend(v.as_int(), from_w);
            if to_w == 32 {
                Val::F32(s as f32)
            } else {
                Val::F64(s as f64)
            }
        }
        CastKind::FpToSi => {
            let x = match v {
                Val::F32(x) => x as f64,
                Val::F64(x) => x,
                Val::Int(_) => panic!("fptosi of integer"),
            };
            Val::Int(mask_to_width(x as i64 as u64, to_w))
        }
        CastKind::PtrCast | CastKind::PtrToInt | CastKind::IntToPtr => Val::Int(v.as_int()),
        CastKind::FpExt => Val::F64(v.as_f32() as f64),
        CastKind::FpTrunc => Val::F32(v.as_f64() as f32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

    fn run_both(
        m: &Module,
        f: FuncId,
        args: &[Val],
        mem_init: &[u8],
        cfg: &AcceleratorConfig,
    ) -> (SimOutcome, Vec<u8>, Option<Val>, Vec<u8>) {
        // Accelerator
        let mut acc = Accelerator::elaborate(m, cfg).unwrap();
        acc.mem_mut().write_bytes(0, mem_init);
        let out = acc.run(f, args).unwrap();
        let acc_mem = acc.mem().read_bytes(0, mem_init.len()).to_vec();
        // Interpreter golden model
        let mut im = mem_init.to_vec();
        let gold =
            tapas_ir::interp::run(m, f, args, &mut im, &tapas_ir::interp::InterpConfig::default())
                .unwrap();
        (out, acc_mem, gold.ret, im)
    }

    /// Parallel-for over an array: a[i] += 1 for i in 0..n (Fig. 2 shape).
    pub(super) fn build_pfor_inc(m: &mut Module) -> FuncId {
        let mut b =
            FunctionBuilder::new("pfor_inc", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let header = b.create_block("header");
        let spawn = b.create_block("spawn");
        let task = b.create_block("task");
        let latch = b.create_block("latch");
        let exit = b.create_block("exit");
        let done = b.create_block("done");
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c, spawn, exit);
        b.switch_to(spawn);
        b.detach(task, latch);
        b.switch_to(task);
        let p = b.gep_index(a, i);
        let v = b.load(p);
        let one32 = b.const_int(Type::I32, 1);
        let v2 = b.add(v, one32);
        b.store(p, v2);
        b.reattach(latch);
        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);
        b.switch_to(exit);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);
        m.add_function(b.finish())
    }

    #[test]
    fn straight_line_task_matches_interpreter() {
        let mut b = FunctionBuilder::new("axpy1", vec![Type::ptr(Type::I32), Type::I32], Type::I32);
        let (p, x) = (b.param(0), b.param(1));
        let v = b.load(p);
        let prod = b.mul(v, x);
        let three = b.const_int(Type::I32, 3);
        let s = b.add(prod, three);
        b.store(p, s);
        b.ret(Some(s));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mem: Vec<u8> = 5i32.to_le_bytes().to_vec();
        let (out, acc_mem, gold_ret, gold_mem) =
            run_both(&m, f, &[Val::Int(0), Val::Int(7)], &mem, &AcceleratorConfig::default());
        assert_eq!(out.ret, gold_ret);
        assert_eq!(acc_mem, gold_mem);
        assert_eq!(out.ret, Some(Val::Int(38)));
        assert!(out.cycles > 40, "two cache misses dominate");
    }

    #[test]
    fn memory_bound_kernel_skips_idle_cycles_without_changing_them() {
        // One tile waiting on two cache misses: almost every cycle is idle,
        // so the event-driven core must skip — and land on exactly the same
        // cycle count as the stepped seed core.
        let mut b = FunctionBuilder::new("axpy1", vec![Type::ptr(Type::I32), Type::I32], Type::I32);
        let (p, x) = (b.param(0), b.param(1));
        let v = b.load(p);
        let prod = b.mul(v, x);
        let three = b.const_int(Type::I32, 3);
        let s = b.add(prod, three);
        b.store(p, s);
        b.ret(Some(s));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mem: Vec<u8> = 5i32.to_le_bytes().to_vec();
        let args = [Val::Int(0), Val::Int(7)];
        let event = AcceleratorConfig::default();
        let mut stepped = event.clone();
        stepped.event_driven = false;
        let (ev, ev_mem, _, _) = run_both(&m, f, &args, &mem, &event);
        let (st, st_mem, _, _) = run_both(&m, f, &args, &mem, &stepped);
        assert_eq!(ev.cycles, st.cycles, "event-driven core changed the cycle count");
        assert_eq!(ev_mem, st_mem);
        assert!(ev.stats.skipped_cycles > 0, "memory stalls should be skippable");
        assert_eq!(ev.cycles, ev.stats.engine_events + ev.stats.skipped_cycles);
        assert_eq!(st.stats.skipped_cycles, 0);
        assert_eq!(st.stats.engine_events, st.cycles);
        // Most of this kernel's lifetime is miss latency, so skipping should
        // do real work: fewer than half the cycles are actually stepped.
        assert!(
            ev.stats.engine_events * 2 < ev.cycles,
            "expected a mostly-idle run: {} events over {} cycles",
            ev.stats.engine_events,
            ev.cycles
        );
    }

    #[test]
    fn fully_busy_kernel_never_skips() {
        // A long chain of dependent single-cycle ALU ops: the tile retires a
        // node every cycle, so there is never a quiescent window to skip.
        // spawn_cost(0) makes the root task dispatchable at cycle 0 —
        // otherwise the initial alloc handshake is itself a skippable gap.
        let mut b = FunctionBuilder::new("alu_chain", vec![Type::I32], Type::I32);
        let mut v = b.param(0);
        let one = b.const_int(Type::I32, 1);
        for _ in 0..48 {
            v = b.add(v, one);
        }
        b.ret(Some(v));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let cfg = AcceleratorConfig::builder().spawn_cost(0).build().unwrap();
        let (out, _, gold_ret, _) = run_both(&m, f, &[Val::Int(1)], &[], &cfg);
        assert_eq!(out.ret, gold_ret);
        assert_eq!(out.ret, Some(Val::Int(49)));
        assert_eq!(out.stats.skipped_cycles, 0, "a busy machine has nothing to skip");
        assert_eq!(out.stats.engine_events, out.cycles);
    }

    #[test]
    fn serial_loop_matches_interpreter() {
        // sum over memory: while i<n acc+=a[i]
        let mut b = FunctionBuilder::new("sum", vec![Type::ptr(Type::I32), Type::I64], Type::I32);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let (a, n) = (b.param(0), b.param(1));
        let zero64 = b.const_int(Type::I64, 0);
        let zero32 = b.const_int(Type::I32, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero64)]);
        let acc = b.phi(Type::I32, vec![(entry, zero32)]);
        let c = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.gep_index(a, i);
        let v = b.load(p);
        let acc2 = b.add(acc, v);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mut mem = Vec::new();
        for k in 0..16i32 {
            mem.extend_from_slice(&k.to_le_bytes());
        }
        let (out, acc_mem, gold_ret, gold_mem) =
            run_both(&m, f, &[Val::Int(0), Val::Int(16)], &mem, &AcceleratorConfig::default());
        assert_eq!(out.ret, gold_ret);
        assert_eq!(out.ret, Some(Val::Int(120)));
        assert_eq!(acc_mem, gold_mem);
    }

    #[test]
    fn parallel_for_spawns_and_matches() {
        let mut m = Module::new("m");
        let f = build_pfor_inc(&mut m);
        let n = 24u64;
        let mut mem = Vec::new();
        for k in 0..n as i32 {
            mem.extend_from_slice(&(k * 3).to_le_bytes());
        }
        let cfg = AcceleratorConfig::default().with_default_tiles(2);
        let (out, acc_mem, _, gold_mem) = run_both(&m, f, &[Val::Int(0), Val::Int(n)], &mem, &cfg);
        assert_eq!(acc_mem, gold_mem);
        assert_eq!(out.stats.spawns, n);
        // Uncontended spawn latency is small ("~10 cycles" claim); the
        // average includes queueing delay when producers outrun tiles.
        let min = out.stats.min_spawn_latency.expect("detaches ran, latency is defined");
        assert!(min <= 12, "min spawn latency {min}");
    }

    #[test]
    fn spawn_latency_fields_well_defined_without_spawns() {
        let mut b = FunctionBuilder::new("leaf", vec![Type::I32], Type::I32);
        let x = b.param(0);
        let one = b.const_int(Type::I32, 1);
        let y = b.add(x, one);
        b.ret(Some(y));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mut acc = Accelerator::elaborate(&m, &AcceleratorConfig::default()).unwrap();
        let out = acc.run(f, &[Val::Int(4)]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(5)));
        assert_eq!(out.stats.spawns, 0);
        assert_eq!(out.stats.min_spawn_latency, None, "no sentinel for the empty run");
        assert_eq!(out.stats.avg_spawn_latency(), 0.0);
        assert_eq!(out.stats.total_spawn_latency, 0);
    }

    #[test]
    fn more_tiles_do_not_change_results_but_help_performance() {
        let mut m = Module::new("m");
        let f = build_pfor_inc(&mut m);
        let n = 64u64;
        let mut mem = vec![0u8; (n * 4) as usize];
        for k in 0..n as usize {
            mem[k * 4..k * 4 + 4].copy_from_slice(&(k as i32).to_le_bytes());
        }
        let run_with = |tiles: usize| {
            let cfg = AcceleratorConfig::default().with_tiles("pfor_inc::task1", tiles);
            let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
            acc.mem_mut().write_bytes(0, &mem);
            let out = acc.run(f, &[Val::Int(0), Val::Int(n)]).unwrap();
            (out.cycles, acc.mem().read_bytes(0, mem.len()).to_vec())
        };
        let (c1, m1) = run_with(1);
        let (c4, m4) = run_with(4);
        assert_eq!(m1, m4, "tile count must not affect results");
        assert!(c4 <= c1, "more tiles should not slow down ({c4} vs {c1})");
    }

    #[test]
    fn nested_detach_sync_matches() {
        // Parent spawns a child; child spawns a grandchild writing memory.
        let mut b = FunctionBuilder::new("nest", vec![Type::ptr(Type::I32)], Type::Void);
        let t1 = b.create_block("t1");
        let c1 = b.create_block("c1");
        let gt = b.create_block("gt");
        let gc = b.create_block("gc");
        let gdone = b.create_block("gdone");
        let done = b.create_block("done");
        let p = b.param(0);
        b.detach(t1, c1);
        // child region: spawn grandchild, sync, reattach
        b.switch_to(t1);
        b.detach(gt, gc);
        b.switch_to(gt);
        let seven = b.const_int(Type::I32, 7);
        b.store(p, seven);
        b.reattach(gc);
        b.switch_to(gc);
        b.sync(gdone);
        b.switch_to(gdone);
        let v = b.load(p);
        let one = b.const_int(Type::I32, 1);
        let v2 = b.add(v, one);
        b.store(p, v2);
        b.reattach(c1);
        b.switch_to(c1);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mem = vec![0u8; 4];
        let (out, acc_mem, _, gold_mem) =
            run_both(&m, f, &[Val::Int(0)], &mem, &AcceleratorConfig::default());
        assert_eq!(acc_mem, gold_mem);
        assert_eq!(i32::from_le_bytes(acc_mem[0..4].try_into().unwrap()), 8);
        assert_eq!(out.stats.spawns, 2);
    }

    /// Recursive parallel fib via detached call (the §IV-C pattern).
    fn build_parallel_fib(m: &mut Module) -> FuncId {
        // fib(n): if n < 2 return n
        //         x = spawn { fib(n-1) -> store to scratch }
        //         actually: spawn task computing fib(n-1) into mem[addr],
        //         compute fib(n-2) serially via call, sync, add.
        let mut b = FunctionBuilder::new("fib", vec![Type::I32, Type::ptr(Type::I32)], Type::I32);
        let rec = b.create_block("rec");
        let base = b.create_block("base");
        let task = b.create_block("task");
        let cont = b.create_block("cont");
        let after = b.create_block("after");
        let (n, out) = (b.param(0), b.param(1));
        let two = b.const_int(Type::I32, 2);
        let c = b.icmp(CmpPred::Slt, n, two);
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(Some(n));
        b.switch_to(rec);
        b.detach(task, cont);
        // spawned: r1 = fib(n-1, out+1); store r1 to out[0]
        b.switch_to(task);
        let one = b.const_int(Type::I32, 1);
        let n1 = b.sub(n, one);
        let one64 = b.const_int(Type::I64, 1);
        let sub_out = b.gep_index(out, one64);
        let r1 = b.call(FuncId(0), vec![n1, sub_out], Type::I32).unwrap();
        b.store(out, r1);
        b.reattach(cont);
        // continuation: r2 = fib(n-2, out+33) serial call
        b.switch_to(cont);
        let n2 = b.sub(n, two);
        let k33 = b.const_int(Type::I64, 33);
        let sub_out2 = b.gep_index(out, k33);
        let r2 = b.call(FuncId(0), vec![n2, sub_out2], Type::I32).unwrap();
        b.sync(after);
        b.switch_to(after);
        let r1v = b.load(out);
        let s = b.add(r1v, r2);
        b.ret(Some(s));
        m.add_function(b.finish())
    }

    #[test]
    fn recursive_parallel_fib() {
        let mut m = Module::new("m");
        let f = build_parallel_fib(&mut m);
        tapas_ir::verify_module(&m).unwrap();
        // Scratch space: 66 slots per level, 12 levels is plenty for n=10.
        let mem = vec![0u8; 1 << 16];
        let cfg =
            AcceleratorConfig { ntasks: 256, ..AcceleratorConfig::default() }.with_default_tiles(2);
        let (out, _, gold_ret, _) = run_both(&m, f, &[Val::Int(10), Val::Int(4096)], &mem, &cfg);
        assert_eq!(gold_ret, Some(Val::Int(55)));
        assert_eq!(out.ret, Some(Val::Int(55)));
        assert!(out.stats.calls > 50, "recursion bridged through call spawns");
        assert!(out.stats.spawns > 20);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut b = FunctionBuilder::new("inf", vec![], Type::Void);
        let lp = b.create_block("lp");
        b.br(lp);
        b.switch_to(lp);
        b.br(lp);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let cfg = AcceleratorConfig { max_cycles: 5000, ..AcceleratorConfig::default() };
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        let err = acc.run(f, &[]).unwrap_err();
        assert!(matches!(err, SimError::CycleLimit(_)));
    }

    #[test]
    fn div_by_zero_reported() {
        let mut b = FunctionBuilder::new("dz", vec![Type::I32], Type::I32);
        let x = b.param(0);
        let zero = b.const_int(Type::I32, 0);
        let q = b.sdiv(x, zero);
        b.ret(Some(q));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mut acc = Accelerator::elaborate(&m, &AcceleratorConfig::default()).unwrap();
        let err = acc.run(f, &[Val::Int(3)]).unwrap_err();
        assert_eq!(err, SimError::DivByZero);
    }

    #[test]
    fn unit_per_task_elaborated() {
        let mut m = Module::new("m");
        let f = build_pfor_inc(&mut m);
        let _ = f;
        let acc = Accelerator::elaborate(&m, &AcceleratorConfig::default()).unwrap();
        assert_eq!(acc.num_units(), 2);
        let names = acc.unit_names();
        assert!(names[0].contains("root"));
        assert!(names[1].contains("task"));
    }

    #[test]
    fn stats_accumulate_busy_cycles() {
        let mut m = Module::new("m");
        let f = build_pfor_inc(&mut m);
        let mut acc = Accelerator::elaborate(&m, &AcceleratorConfig::default()).unwrap();
        let n = 8u64;
        let out = acc.run(f, &[Val::Int(0), Val::Int(n)]).unwrap();
        let root = &out.stats.units[0];
        let child = &out.stats.units[1];
        assert!(root.busy_tile_cycles > 0);
        assert!(child.busy_tile_cycles > 0);
        assert_eq!(child.tasks_executed, n);
        assert_eq!(root.tasks_executed, 1);
        assert!(out.stats.cache.hits + out.stats.cache.misses > 0);
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;
    use crate::AcceleratorConfig;
    use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

    #[test]
    fn event_trace_covers_task_lifecycles() {
        // parallel-for with 6 iterations
        let mut b = FunctionBuilder::new("k", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let header = b.create_block("header");
        let spawn = b.create_block("spawn");
        let task = b.create_block("task");
        let latch = b.create_block("latch");
        let exit = b.create_block("exit");
        let done = b.create_block("done");
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c, spawn, exit);
        b.switch_to(spawn);
        b.detach(task, latch);
        b.switch_to(task);
        let p = b.gep_index(a, i);
        let one32 = b.const_int(Type::I32, 1);
        b.store(p, one32);
        b.reattach(latch);
        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);
        b.switch_to(exit);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());

        let cfg = AcceleratorConfig {
            record_events: true,
            mem_bytes: 4096,
            ..AcceleratorConfig::default()
        };
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        let out = acc.run(f, &[Val::Int(0), Val::Int(6)]).unwrap();
        let events = acc.take_events();
        assert!(!events.is_empty());
        let count =
            |k: fn(&SimEventKind) -> bool| events.iter().filter(|e| k(&e.kind)).count() as u64;
        // 6 children + 1 host root spawned-and-completed
        assert_eq!(count(|k| matches!(k, SimEventKind::Spawned { .. })), 7);
        assert_eq!(
            count(|k| matches!(k, SimEventKind::Spawned { parent: Some(_) })),
            6,
            "every detach-spawn carries its parent id"
        );
        assert_eq!(count(|k| matches!(k, SimEventKind::Completed)), 7);
        assert_eq!(
            count(|k| matches!(k, SimEventKind::SyncWait)),
            1,
            "the root parks once at its sync"
        );
        // Every slot's dispatch precedes its completion.
        for e in &events {
            if let SimEventKind::Completed = e.kind {
                let d = events
                    .iter()
                    .find(|x| {
                        x.unit == e.unit
                            && x.slot == e.slot
                            && matches!(x.kind, SimEventKind::Dispatched { .. })
                    })
                    .expect("dispatched before completed");
                assert!(d.cycle <= e.cycle);
            }
        }
        // Trace drained: second take is empty.
        assert!(acc.take_events().is_empty());
        assert_eq!(out.stats.spawns, 6);
    }

    #[test]
    fn events_off_by_default() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let mut acc = Accelerator::elaborate(&m, &AcceleratorConfig::default()).unwrap();
        acc.run(f, &[]).unwrap();
        assert!(acc.take_events().is_empty());
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use crate::{AcceleratorConfig, ProfileLevel, StallReason};
    use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

    fn build_pfor(m: &mut Module) -> FuncId {
        let mut b = FunctionBuilder::new("pf", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let header = b.create_block("header");
        let spawn = b.create_block("spawn");
        let task = b.create_block("task");
        let latch = b.create_block("latch");
        let exit = b.create_block("exit");
        let done = b.create_block("done");
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c, spawn, exit);
        b.switch_to(spawn);
        b.detach(task, latch);
        b.switch_to(task);
        let p = b.gep_index(a, i);
        let v = b.load(p);
        let one32 = b.const_int(Type::I32, 1);
        let v2 = b.add(v, one32);
        b.store(p, v2);
        b.reattach(latch);
        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);
        b.switch_to(exit);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);
        m.add_function(b.finish())
    }

    #[test]
    fn profile_attribution_sums_to_cycles() {
        let mut m = Module::new("m");
        let f = build_pfor(&mut m);
        let cfg =
            AcceleratorConfig::builder().tiles(2).profile(ProfileLevel::Full).build().unwrap();
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        let out = acc.run(f, &[Val::Int(0), Val::Int(16)]).unwrap();
        let profile = out.profile.expect("profiling was on");
        profile.check_invariant().unwrap();
        assert_eq!(profile.cycles, out.cycles);
        assert_eq!(profile.units.len(), 2);
        assert!(profile.stall_total(StallReason::Busy) > 0, "somebody worked");
        assert_eq!(profile.attributed_cycles(), profile.cycles * profile.tile_count() as u64);
        // Full level records the node mix; this kernel has memory nodes.
        let mem_class = crate::NodeClass::Memory as usize;
        let total_mem: u64 = profile.units.iter().map(|u| u.node_mix[mem_class]).sum();
        assert!(total_mem > 0);
        // The queue saw the spawned entries.
        assert!(profile.units[1].queue.peak > 0);
    }

    #[test]
    fn profiling_does_not_perturb_the_simulation() {
        let mut m = Module::new("m");
        let f = build_pfor(&mut m);
        let run_with = |level: ProfileLevel| {
            let cfg = AcceleratorConfig::builder().tiles(2).profile(level).build().unwrap();
            let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
            acc.run(f, &[Val::Int(0), Val::Int(24)]).unwrap()
        };
        let off = run_with(ProfileLevel::Off);
        let on = run_with(ProfileLevel::Full);
        assert!(off.profile.is_none());
        assert_eq!(off.cycles, on.cycles, "profiling must be timing-neutral");
        assert_eq!(off.ret, on.ret);
        assert_eq!(off.stats.spawns, on.stats.spawns);
        assert_eq!(off.stats.cache.hits, on.stats.cache.hits);
        assert_eq!(off.stats.cache.misses, on.stats.cache.misses);
    }

    #[test]
    fn trace_path_writes_chrome_json() {
        let mut m = Module::new("m");
        let f = build_pfor(&mut m);
        let dir = std::env::temp_dir().join("tapas-sim-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let cfg = AcceleratorConfig::builder().trace_path(&path).build().unwrap();
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        acc.run(f, &[Val::Int(0), Val::Int(8)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"ph\":\"X\""));
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod admission_tests {
    use super::*;
    use crate::{AcceleratorConfig, AdmissionControl, ProfileLevel, StallReason};
    use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

    /// Parallel-for a[i] += 1 (same shape as the main test module's).
    fn build_pfor(m: &mut Module) -> FuncId {
        let mut b = FunctionBuilder::new("pf", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let header = b.create_block("header");
        let spawn = b.create_block("spawn");
        let task = b.create_block("task");
        let latch = b.create_block("latch");
        let exit = b.create_block("exit");
        let done = b.create_block("done");
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c, spawn, exit);
        b.switch_to(spawn);
        b.detach(task, latch);
        b.switch_to(task);
        let p = b.gep_index(a, i);
        let v = b.load(p);
        let one32 = b.const_int(Type::I32, 1);
        let v2 = b.add(v, one32);
        b.store(p, v2);
        b.reattach(latch);
        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);
        b.switch_to(exit);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);
        m.add_function(b.finish())
    }

    /// Recursive parallel fib (same shape as the main test module's).
    fn build_fib(m: &mut Module) -> FuncId {
        let mut b = FunctionBuilder::new("fib", vec![Type::I32, Type::ptr(Type::I32)], Type::I32);
        let rec = b.create_block("rec");
        let base = b.create_block("base");
        let task = b.create_block("task");
        let cont = b.create_block("cont");
        let after = b.create_block("after");
        let (n, out) = (b.param(0), b.param(1));
        let two = b.const_int(Type::I32, 2);
        let c = b.icmp(CmpPred::Slt, n, two);
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(Some(n));
        b.switch_to(rec);
        b.detach(task, cont);
        b.switch_to(task);
        let one = b.const_int(Type::I32, 1);
        let n1 = b.sub(n, one);
        let one64 = b.const_int(Type::I64, 1);
        let sub_out = b.gep_index(out, one64);
        let r1 = b.call(FuncId(0), vec![n1, sub_out], Type::I32).unwrap();
        b.store(out, r1);
        b.reattach(cont);
        b.switch_to(cont);
        let n2 = b.sub(n, two);
        let k33 = b.const_int(Type::I64, 33);
        let sub_out2 = b.gep_index(out, k33);
        let r2 = b.call(FuncId(0), vec![n2, sub_out2], Type::I32).unwrap();
        b.sync(after);
        b.switch_to(after);
        let r1v = b.load(out);
        let s = b.add(r1v, r2);
        b.ret(Some(s));
        m.add_function(b.finish())
    }

    fn pfor_mem(n: u64) -> Vec<u8> {
        let mut mem = vec![0u8; (n * 4) as usize];
        for k in 0..n as usize {
            mem[k * 4..k * 4 + 4].copy_from_slice(&(k as i32 * 3).to_le_bytes());
        }
        mem
    }

    fn run_pfor(cfg: &AcceleratorConfig, n: u64) -> (SimOutcome, Vec<u8>) {
        let mut m = Module::new("m");
        let f = build_pfor(&mut m);
        let mem = pfor_mem(n);
        let mut acc = Accelerator::elaborate(&m, cfg).unwrap();
        acc.mem_mut().write_bytes(0, &mem);
        let out = acc.run(f, &[Val::Int(0), Val::Int(n)]).unwrap();
        let final_mem = acc.mem().read_bytes(0, mem.len()).to_vec();
        (out, final_mem)
    }

    fn golden_pfor(n: u64) -> Vec<u8> {
        let mut m = Module::new("m");
        let f = build_pfor(&mut m);
        let mut im = pfor_mem(n);
        tapas_ir::interp::run(
            &m,
            f,
            &[Val::Int(0), Val::Int(n)],
            &mut im,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        im
    }

    #[test]
    fn one_entry_queue_completes_inline_and_matches() {
        let n = 24u64;
        let cfg = AcceleratorConfig {
            ntasks: 1,
            mem_bytes: 4096,
            admission: Some(AdmissionControl::work_first()),
            ..AcceleratorConfig::default()
        };
        let (out, mem) = run_pfor(&cfg, n);
        assert_eq!(mem, golden_pfor(n), "inline degradation must preserve results");
        assert!(out.stats.inline_spawns > 0, "Ntasks=1 must force inline spawns");
        assert_eq!(out.stats.spills, 0, "work-first admission never spills");
    }

    #[test]
    fn tiny_queue_spills_refills_and_matches() {
        let n = 32u64;
        let cfg = AcceleratorConfig {
            ntasks: 2,
            mem_bytes: 4096,
            admission: Some(AdmissionControl::virtualized()),
            ..AcceleratorConfig::default()
        };
        let (out, mem) = run_pfor(&cfg, n);
        assert_eq!(mem, golden_pfor(n), "queue virtualization must preserve results");
        assert!(out.stats.spills > 0, "Ntasks=2 must overflow into the arena");
        assert_eq!(out.stats.spills, out.stats.refills, "every spill drains back");
        assert_eq!(out.stats.inline_spawns, 0, "virtualized admission never inlines");
    }

    #[test]
    fn recursion_on_tiny_queue_recovers_instead_of_deadlocking() {
        let mut m = Module::new("m");
        let f = build_fib(&mut m);
        let cfg = AcceleratorConfig {
            ntasks: 2,
            admission: Some(AdmissionControl::default()),
            ..AcceleratorConfig::default()
        }
        .with_default_tiles(2);
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        let out = acc.run(f, &[Val::Int(10), Val::Int(4096)]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(55)), "fib(10) under a 2-entry queue");
    }

    #[test]
    fn deadlock_diagnosis_is_deterministic_without_admission() {
        // Satellite: the same blocked-spawn cycle must render byte-identical
        // across independent runs (stable unit order, no map-order leaks).
        let run_once = || {
            let mut m = Module::new("m");
            let f = build_fib(&mut m);
            let cfg = AcceleratorConfig { ntasks: 2, ..AcceleratorConfig::default() }
                .with_default_tiles(2);
            let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
            match acc.run(f, &[Val::Int(10), Val::Int(4096)]) {
                Err(SimError::Deadlock { at, diagnosis }) => (at, diagnosis.to_string()),
                other => panic!("expected spawn-cycle deadlock, got {other:?}"),
            }
        };
        let (at1, d1) = run_once();
        let (at2, d2) = run_once();
        assert_eq!(at1, at2, "deadlock detected at the same cycle");
        assert_eq!(d1, d2, "diagnosis rendering must be byte-identical");
        assert!(d1.contains("spawn"), "diagnosis names the blocked spawn: {d1}");
    }

    #[test]
    fn admission_is_timing_neutral_when_queues_are_roomy() {
        let n = 24u64;
        let base = AcceleratorConfig { mem_bytes: 4096, ..AcceleratorConfig::default() };
        let armed =
            AcceleratorConfig { admission: Some(AdmissionControl::default()), ..base.clone() };
        let (off, mem_off) = run_pfor(&base, n);
        let (on, mem_on) = run_pfor(&armed, n);
        assert_eq!(off.cycles, on.cycles, "unused admission machinery must cost zero cycles");
        assert_eq!(mem_off, mem_on);
        assert_eq!(on.stats.spills, 0);
        assert_eq!(on.stats.inline_spawns, 0);
    }

    #[test]
    fn spill_pressure_shows_up_as_spill_stall() {
        let n = 32u64;
        let cfg = AcceleratorConfig {
            ntasks: 2,
            mem_bytes: 4096,
            admission: Some(AdmissionControl::default()),
            profile: ProfileLevel::Summary,
            ..AcceleratorConfig::default()
        };
        let mut m = Module::new("m");
        let f = build_pfor(&mut m);
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        acc.mem_mut().write_bytes(0, &pfor_mem(n));
        let out = acc.run(f, &[Val::Int(0), Val::Int(n)]).unwrap();
        let profile = out.profile.expect("profiling was on");
        profile.check_invariant().unwrap();
        assert!(
            profile.stall_total(StallReason::SpillStall) > 0,
            "queue pressure under virtualization must be attributed to spill-stall"
        );
        // Refused spawns count the child queue as full even when spilling
        // keeps occupancy below nominal capacity.
        assert!(profile.units[1].queue.full_cycles > 0);
    }
}

#[cfg(test)]
mod steal_bank_tests {
    use super::*;
    use crate::{AcceleratorConfig, ProfileLevel, StallReason, StealConfig};
    use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

    /// Recursive parallel fib (same shape as the main test module's): both
    /// units touch memory, so steals flow in either direction.
    fn build_fib(m: &mut Module) -> FuncId {
        let mut b = FunctionBuilder::new("fib", vec![Type::I32, Type::ptr(Type::I32)], Type::I32);
        let rec = b.create_block("rec");
        let base = b.create_block("base");
        let task = b.create_block("task");
        let cont = b.create_block("cont");
        let after = b.create_block("after");
        let (n, out) = (b.param(0), b.param(1));
        let two = b.const_int(Type::I32, 2);
        let c = b.icmp(CmpPred::Slt, n, two);
        b.cond_br(c, base, rec);
        b.switch_to(base);
        b.ret(Some(n));
        b.switch_to(rec);
        b.detach(task, cont);
        b.switch_to(task);
        let one = b.const_int(Type::I32, 1);
        let n1 = b.sub(n, one);
        let one64 = b.const_int(Type::I64, 1);
        let sub_out = b.gep_index(out, one64);
        let r1 = b.call(FuncId(0), vec![n1, sub_out], Type::I32).unwrap();
        b.store(out, r1);
        b.reattach(cont);
        b.switch_to(cont);
        let n2 = b.sub(n, two);
        let k33 = b.const_int(Type::I64, 33);
        let sub_out2 = b.gep_index(out, k33);
        let r2 = b.call(FuncId(0), vec![n2, sub_out2], Type::I32).unwrap();
        b.sync(after);
        b.switch_to(after);
        let r1v = b.load(out);
        let s = b.add(r1v, r2);
        b.ret(Some(s));
        m.add_function(b.finish())
    }

    fn run_fib(cfg: &AcceleratorConfig) -> SimOutcome {
        let mut m = Module::new("m");
        let f = build_fib(&mut m);
        let mut acc = Accelerator::elaborate(&m, cfg).unwrap();
        acc.run(f, &[Val::Int(10), Val::Int(4096)]).unwrap()
    }

    fn fib_cfg() -> AcceleratorConfig {
        AcceleratorConfig { ntasks: 256, ..AcceleratorConfig::default() }.with_default_tiles(2)
    }

    #[test]
    fn stealing_preserves_results_and_helps_fib() {
        let off = run_fib(&fib_cfg());
        let on_cfg = AcceleratorConfig { steal: Some(StealConfig::default()), ..fib_cfg() };
        let on = run_fib(&on_cfg);
        assert_eq!(on.ret, Some(Val::Int(55)), "stolen instances compute the same answer");
        assert_eq!(off.ret, on.ret);
        assert!(on.stats.steals > 0, "idle tiles found work to steal");
        assert!(
            on.cycles <= off.cycles,
            "stealing must not slow fib down ({} vs {})",
            on.cycles,
            off.cycles
        );
    }

    #[test]
    fn steal_trace_is_deterministic() {
        let cfg = AcceleratorConfig {
            steal: Some(StealConfig { latency: 2 }),
            record_events: true,
            ..fib_cfg()
        };
        let run_once = || {
            let mut m = Module::new("m");
            let f = build_fib(&mut m);
            let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
            let out = acc.run(f, &[Val::Int(10), Val::Int(4096)]).unwrap();
            let steals: Vec<(u64, usize, usize)> = acc
                .take_events()
                .iter()
                .filter(|e| matches!(e.kind, SimEventKind::Stolen { .. }))
                .map(|e| (e.cycle, e.unit, e.slot))
                .collect();
            (out.cycles, out.stats.steals, steals)
        };
        let (c1, s1, t1) = run_once();
        let (c2, s2, t2) = run_once();
        assert_eq!(c1, c2, "cycle count must be run-to-run deterministic");
        assert_eq!(s1, s2);
        assert_eq!(t1, t2, "the full steal trace must be byte-identical");
        assert!(!t1.is_empty());
    }

    #[test]
    fn owner_wins_no_entry_dispatches_twice() {
        // Regression for the pop/steal same-cycle race: dispatch events per
        // entry must balance spawn + park events exactly. A double dispatch
        // (owner and thief both claiming an entry) breaks the equation.
        let cfg = AcceleratorConfig {
            steal: Some(StealConfig { latency: 1 }),
            record_events: true,
            ..fib_cfg()
        };
        let mut m = Module::new("m");
        let f = build_fib(&mut m);
        let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
        let out = acc.run(f, &[Val::Int(10), Val::Int(4096)]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(55)));
        let events = acc.take_events();
        let count =
            |k: fn(&SimEventKind) -> bool| events.iter().filter(|e| k(&e.kind)).count() as u64;
        let dispatched = count(|k| matches!(k, SimEventKind::Dispatched { .. }));
        let spawned = count(|k| matches!(k, SimEventKind::Spawned { .. }));
        let parked = count(|k| matches!(k, SimEventKind::SyncWait | SimEventKind::CallWait));
        assert_eq!(
            dispatched,
            spawned + parked,
            "every entry dispatches exactly once per spawn or un-park"
        );
        assert!(count(|k| matches!(k, SimEventKind::Stolen { .. })) > 0);
    }

    #[test]
    fn steal_latency_is_attributed_to_steal_stall() {
        let cfg = AcceleratorConfig {
            steal: Some(StealConfig { latency: 6 }),
            profile: ProfileLevel::Summary,
            ..fib_cfg()
        };
        let out = run_fib(&cfg);
        let profile = out.profile.expect("profiling was on");
        profile.check_invariant().unwrap();
        assert!(
            profile.stall_total(StallReason::StealStall) > 0,
            "in-flight steals must show up in the steal-stall bucket"
        );
    }

    #[test]
    fn banked_cache_preserves_results_and_timing_neutral_at_one_bank() {
        let n = 32u64;
        let mut mem = vec![0u8; (n * 4) as usize];
        for k in 0..n as usize {
            mem[k * 4..k * 4 + 4].copy_from_slice(&(k as i32 * 3).to_le_bytes());
        }
        let run_with = |banks: usize| {
            let mut m = Module::new("m");
            let f = super::tests::build_pfor_inc(&mut m);
            let cfg = AcceleratorConfig { l1_banks: banks, mem_bytes: 4096, ..Default::default() }
                .with_default_tiles(4);
            let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
            acc.mem_mut().write_bytes(0, &mem);
            let out = acc.run(f, &[Val::Int(0), Val::Int(n)]).unwrap();
            (out, acc.mem().read_bytes(0, mem.len()).to_vec())
        };
        let (seed, seed_mem) = run_with(1);
        let (banked, banked_mem) = run_with(4);
        assert_eq!(seed_mem, banked_mem, "banking must not change results");
        assert!(
            banked.cycles <= seed.cycles,
            "4 banks must not slow the memory-bound pfor down ({} vs {})",
            banked.cycles,
            seed.cycles
        );
        // L1 totals are aggregated across banks: same accesses either way.
        assert_eq!(
            seed.stats.cache.hits + seed.stats.cache.misses,
            banked.stats.cache.hits + banked.stats.cache.misses
        );
    }

    #[test]
    fn both_features_compose_and_match_the_interpreter() {
        let cfg =
            AcceleratorConfig { steal: Some(StealConfig::default()), l1_banks: 4, ..fib_cfg() };
        let out = run_fib(&cfg);
        assert_eq!(out.ret, Some(Val::Int(55)));
        let seed = run_fib(&fib_cfg());
        assert!(
            out.cycles <= seed.cycles,
            "steal + 4 banks must not regress fib ({} vs {})",
            out.cycles,
            seed.cycles
        );
    }

    #[test]
    fn disabled_features_are_cycle_identical_to_seed() {
        // The builder's defaults (steal off, one bank) must take the exact
        // seed code paths: same cycles, same stats, zero feature counters.
        let seed = run_fib(&fib_cfg());
        let explicit = AcceleratorConfig { steal: None, l1_banks: 1, ..fib_cfg() };
        let off = run_fib(&explicit);
        assert_eq!(seed.cycles, off.cycles);
        assert_eq!(seed.ret, off.ret);
        assert_eq!(off.stats.steals, 0);
        assert_eq!(off.stats.steal_fail, 0);
        assert_eq!(off.stats.bank_conflicts, 0);
        assert_eq!(seed.stats.cache.hits, off.stats.cache.hits);
        assert_eq!(seed.stats.cache.misses, off.stats.cache.misses);
    }
}
