//! Deterministic fault injection and the accelerator's fault-tolerance
//! model.
//!
//! TAPAS designs are latency-insensitive by construction — every operation
//! handshakes ready/valid and tolerates non-deterministic memory latency —
//! so a correctly built accelerator should *mask* transient hardware
//! faults (a stalled tile, a lost or duplicated data-box grant, a delayed
//! DRAM response) and *detect* the rest (corrupted payloads, parity errors
//! in queue RAM, permanently wedged tiles) rather than ever producing a
//! silently wrong result. This module provides both halves:
//!
//! * [`FaultPlan`] — a deterministic, seedable list of [`Fault`]s to
//!   inject, installed via
//!   [`AcceleratorConfigBuilder::faults`](crate::AcceleratorConfigBuilder::faults).
//!   Faults trigger on *event counts* (the nth memory response, the nth
//!   spawn) or at fixed cycles, so the same plan on the same program
//!   yields the same cycle count every run.
//! * [`FaultTolerance`] — the recovery mechanisms carried by the design:
//!   memory retry with bounded exponential backoff, response ECC,
//!   queue-RAM parity, per-unit watchdog timers, and tile quarantine with
//!   graceful degradation (a tile exceeding its fault budget is fenced
//!   and its in-flight task re-enqueues onto surviving tiles).
//! * [`DeadlockDiagnosis`] — the payload of
//!   [`SimError::Deadlock`](crate::SimError): the actual wait-for cycle
//!   between task units, per-unit queue occupancy, and the oldest blocked
//!   task's `(SID, DyID)`.
//!
//! # Why retried writes are safe
//!
//! A dropped or timed-out request is re-issued verbatim, which re-applies
//! the functional effect of a write. That re-application is idempotent
//! only because TAPAS programs are determinacy-race-free (enforced
//! statically by `tapas-lint` and dynamically by the interpreter's SP-bags
//! oracle): no other task can have written the same location between the
//! original grant and the retry, so replaying the store cannot change the
//! final memory image.

use std::collections::{HashMap, HashSet};
use tapas_mem::MemResp;

/// One injected hardware fault.
///
/// Memory-response faults (`DropResponse`, `DuplicateResponse`,
/// `CorruptResponse`, `DelayResponse`) trigger on the *nth response*
/// (1-based) leaving the data box; queue faults trigger on the *nth queue
/// allocation* (1-based, counting the host invocation); tile faults
/// trigger at an absolute cycle. Unit and tile indices are resolved
/// modulo the design's actual geometry, so a randomly generated plan is
/// valid for any design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The tile freezes for `cycles` cycles starting at cycle `at`
    /// (transient: an SEU in control logic that self-clears).
    TileStall {
        /// Task-unit index (modulo the number of units).
        unit: usize,
        /// Tile index within the unit (modulo its tile count).
        tile: usize,
        /// Cycle the stall begins.
        at: u64,
        /// Stall duration in cycles.
        cycles: u64,
    },
    /// The tile freezes permanently at cycle `at` (a hard fault). Counts
    /// as exceeding any fault budget, so quarantine fences it if enabled.
    TileWedge {
        /// Task-unit index (modulo the number of units).
        unit: usize,
        /// Tile index within the unit (modulo its tile count).
        tile: usize,
        /// Cycle the tile wedges.
        at: u64,
    },
    /// The nth memory response is dropped in the out-demux network (a
    /// lost data-box grant).
    DropResponse {
        /// 1-based response ordinal.
        nth: u64,
    },
    /// The nth memory response is delivered twice (a duplicated grant).
    DuplicateResponse {
        /// 1-based response ordinal.
        nth: u64,
    },
    /// The nth memory response has one data bit flipped in flight.
    CorruptResponse {
        /// 1-based response ordinal.
        nth: u64,
        /// Which bit of the 64-bit payload to flip (taken modulo 64).
        bit: u8,
    },
    /// The nth memory response is held for `cycles` extra cycles (a DRAM
    /// response timeout).
    DelayResponse {
        /// 1-based response ordinal.
        nth: u64,
        /// Extra delivery delay in cycles.
        cycles: u64,
    },
    /// The nth task-queue allocation has one bit flipped in its stored
    /// arguments (queue-RAM corruption).
    QueueParity {
        /// 1-based spawn ordinal (the host invocation is spawn 1).
        nth_spawn: u64,
        /// Which bit of the first argument to flip (taken modulo 64).
        bit: u8,
    },
}

/// A deterministic list of faults to inject during a run.
///
/// ```
/// use tapas_sim::{AcceleratorConfig, Fault, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .with(Fault::TileStall { unit: 1, tile: 0, at: 500, cycles: 200 })
///     .with(Fault::DropResponse { nth: 3 });
/// let cfg = AcceleratorConfig::builder().tiles(4).faults(plan).build().unwrap();
/// assert!(cfg.faults.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (arms the tolerance machinery without injecting).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append one fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Generate a random-but-deterministic plan from `seed` (SplitMix64):
    /// the same seed always yields the same plan, and therefore — because
    /// every trigger is an event count or fixed cycle — the same simulated
    /// cycle count.
    pub fn random(seed: u64) -> FaultPlan {
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let count = 2 + (next() % 4) as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let f = match next() % 7 {
                0 => Fault::TileStall {
                    unit: (next() % 4) as usize,
                    tile: (next() % 4) as usize,
                    at: 100 + next() % 4000,
                    cycles: 50 + next() % 1500,
                },
                1 => Fault::TileWedge {
                    unit: (next() % 4) as usize,
                    tile: (next() % 4) as usize,
                    at: 100 + next() % 4000,
                },
                2 => Fault::DropResponse { nth: 1 + next() % 40 },
                3 => Fault::DuplicateResponse { nth: 1 + next() % 40 },
                4 => Fault::CorruptResponse { nth: 1 + next() % 40, bit: (next() % 64) as u8 },
                5 => Fault::DelayResponse { nth: 1 + next() % 40, cycles: 1_000 + next() % 20_000 },
                _ => Fault::QueueParity { nth_spawn: 1 + next() % 8, bit: (next() % 64) as u8 },
            };
            faults.push(f);
        }
        FaultPlan { faults }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The recovery mechanisms the elaborated design carries. The defaults
/// enable everything; individual mechanisms can be disabled to observe
/// how each fault class escalates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTolerance {
    /// Per-unit watchdog: a permanently wedged (un-quarantined) tile or a
    /// memory request overdue with retry disabled raises
    /// [`SimError::WatchdogTimeout`](crate::SimError) after this many
    /// cycles. `None` disables the watchdog.
    pub watchdog_timeout: Option<u64>,
    /// Re-arbitrate memory requests whose response has not arrived within
    /// the timeout (masks dropped grants and response timeouts).
    pub mem_retry: bool,
    /// Cycles to wait for a memory response before the first retry;
    /// subsequent retries back off exponentially. Must comfortably exceed
    /// the worst legitimate round trip (DRAM latency + queueing).
    pub mem_timeout: u64,
    /// Retries per request before
    /// [`SimError::MemRetryExhausted`](crate::SimError).
    pub max_mem_retries: u32,
    /// Response ECC: a corrupted payload is detected and the request
    /// retried instead of consuming flipped bits.
    pub ecc: bool,
    /// Queue-RAM parity: corrupted queue entries raise
    /// [`SimError::QueueParity`](crate::SimError) at dispatch instead of
    /// executing with flipped arguments.
    pub parity: bool,
    /// Fence tiles that exceed [`FaultTolerance::tile_fault_budget`] and
    /// re-enqueue their in-flight task onto surviving tiles.
    pub quarantine: bool,
    /// Transient faults a tile may absorb before quarantine fences it
    /// (a wedge always exceeds the budget).
    pub tile_fault_budget: u32,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            watchdog_timeout: Some(100_000),
            mem_retry: true,
            mem_timeout: 20_000,
            max_mem_retries: 4,
            ecc: true,
            parity: true,
            quarantine: true,
            tile_fault_budget: 1,
        }
    }
}

/// What a watchdog-reported unit was waiting on when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCause {
    /// An outstanding memory request whose response never arrived.
    Memory {
        /// Byte address of the overdue access.
        addr: u64,
        /// Retries already attempted for it.
        attempts: u32,
    },
    /// A tile wedged by an injected hard fault (quarantine disabled).
    Fault,
}

impl std::fmt::Display for WaitCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitCause::Memory { addr, attempts } => {
                write!(f, "memory response for {addr:#x} ({attempts} retries attempted)")
            }
            WaitCause::Fault => write!(f, "a wedged tile"),
        }
    }
}

/// Why one task unit waits on another in the wait-for graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// A `detach` is backpressured by the child unit's full queue.
    Spawn,
    /// A parent parked at `sync` waits on children in the other unit.
    Join,
    /// A serial call is blocked on the callee's full root queue, or a
    /// suspended caller waits on the callee's completion.
    Call,
}

impl WaitKind {
    fn label(self) -> &'static str {
        match self {
            WaitKind::Spawn => "spawn",
            WaitKind::Join => "join",
            WaitKind::Call => "call",
        }
    }
}

/// One edge of the wait-for graph: `from` cannot progress until `to` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// Waiting task-unit index.
    pub from: usize,
    /// Awaited task-unit index.
    pub to: usize,
    /// Why.
    pub kind: WaitKind,
}

/// Queue snapshot of one task unit at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitWaitState {
    /// Task unit (= task) name.
    pub name: String,
    /// Live queue entries.
    pub occupancy: usize,
    /// Queue capacity (`Ntasks`).
    pub capacity: usize,
    /// Tiles fenced off by quarantine.
    pub fenced_tiles: usize,
}

/// The oldest task instance still blocked at deadlock time — the paper's
/// `(SID, DyID)` naming: static task id (= unit index) and dynamic queue
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedTask {
    /// Task-unit index (the `SID`).
    pub unit: usize,
    /// Queue slot (the `DyID`).
    pub slot: usize,
    /// Cycle the instance was spawned.
    pub spawned_at: u64,
}

/// Payload of [`SimError::Deadlock`](crate::SimError): what the design was
/// actually stuck on, instead of a guess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockDiagnosis {
    /// Per-unit queue occupancy, in elaboration order.
    pub units: Vec<UnitWaitState>,
    /// The wait-for cycle found between task units (empty if progress
    /// stopped without a cyclic dependency — e.g. every response was
    /// lost and recovery is disabled).
    pub cycle: Vec<WaitEdge>,
    /// The oldest task instance still occupying a queue entry.
    pub oldest: Option<BlockedTask>,
    /// `(unit, tile)` pairs wedged by injected hard faults.
    pub wedged: Vec<(usize, usize)>,
}

impl std::fmt::Display for DeadlockDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = |i: usize| self.units.get(i).map(|u| u.name.as_str()).unwrap_or("?");
        if self.cycle.is_empty() {
            write!(f, "no wait-for cycle between task units")?;
        } else {
            write!(f, "wait-for cycle: ")?;
            for (i, e) in self.cycle.iter().enumerate() {
                if i == 0 {
                    write!(f, "{}", name(e.from))?;
                }
                write!(f, " --{}--> {}", e.kind.label(), name(e.to))?;
            }
        }
        if let Some(b) = &self.oldest {
            write!(
                f,
                "; oldest blocked task SID={} ({}) DyID={} spawned at cycle {}",
                b.unit,
                name(b.unit),
                b.slot,
                b.spawned_at
            )?;
        }
        write!(f, "; queues:")?;
        for u in &self.units {
            write!(
                f,
                " {} {}/{}{}",
                u.name,
                u.occupancy,
                u.capacity,
                if u.occupancy == u.capacity { " (full)" } else { "" }
            )?;
        }
        if !self.wedged.is_empty() {
            write!(f, "; wedged tiles:")?;
            for (u, t) in &self.wedged {
                write!(f, " {}#{t}", name(*u))?;
            }
        }
        Ok(())
    }
}

// ---- runtime state (crate-internal) ------------------------------------

/// A tile fault resolved against the design's geometry, sorted by cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileFaultEvent {
    pub unit: usize,
    pub tile: usize,
    pub at: u64,
    pub wedge: bool,
    pub cycles: u64,
}

/// What the out-demux network does to the current response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RespFault {
    None,
    Drop,
    Duplicate,
    Corrupt(u8),
    Delay(u64),
}

/// Live injection state for one run, built from a [`FaultPlan`] resolved
/// against the elaborated design.
#[derive(Debug)]
pub(crate) struct FaultRt {
    drop: HashSet<u64>,
    dup: HashSet<u64>,
    corrupt: HashMap<u64, u8>,
    delay: HashMap<u64, u64>,
    parity: HashMap<u64, u8>,
    /// Sorted by `at`; `next_tile_fault` indexes the first undelivered one.
    tile_faults: Vec<TileFaultEvent>,
    next_tile_fault: usize,
    resp_seen: u64,
    spawn_seen: u64,
    /// Responses held back by injected delays: `(deliver_at, resp)`.
    pub delayed: Vec<(u64, MemResp)>,
}

impl FaultRt {
    /// Resolve `plan` against the design: `tiles_per_unit[u]` is unit
    /// `u`'s tile count, used to wrap out-of-range fault coordinates.
    pub fn new(plan: &FaultPlan, tiles_per_unit: &[usize]) -> FaultRt {
        let nunits = tiles_per_unit.len().max(1);
        let mut rt = FaultRt {
            drop: HashSet::new(),
            dup: HashSet::new(),
            corrupt: HashMap::new(),
            delay: HashMap::new(),
            parity: HashMap::new(),
            tile_faults: Vec::new(),
            next_tile_fault: 0,
            resp_seen: 0,
            spawn_seen: 0,
            delayed: Vec::new(),
        };
        for f in &plan.faults {
            match *f {
                Fault::TileStall { unit, tile, at, cycles } => {
                    let unit = unit % nunits;
                    let tile = tile % tiles_per_unit[unit].max(1);
                    rt.tile_faults.push(TileFaultEvent { unit, tile, at, wedge: false, cycles });
                }
                Fault::TileWedge { unit, tile, at } => {
                    let unit = unit % nunits;
                    let tile = tile % tiles_per_unit[unit].max(1);
                    rt.tile_faults.push(TileFaultEvent { unit, tile, at, wedge: true, cycles: 0 });
                }
                Fault::DropResponse { nth } => {
                    rt.drop.insert(nth);
                }
                Fault::DuplicateResponse { nth } => {
                    rt.dup.insert(nth);
                }
                Fault::CorruptResponse { nth, bit } => {
                    rt.corrupt.insert(nth, bit);
                }
                Fault::DelayResponse { nth, cycles } => {
                    rt.delay.insert(nth, cycles);
                }
                Fault::QueueParity { nth_spawn, bit } => {
                    rt.parity.insert(nth_spawn, bit);
                }
            }
        }
        rt.tile_faults.sort_by_key(|e| e.at);
        rt
    }

    /// Classify the next response leaving the data box. Drop takes
    /// priority over corrupt over duplicate over delay when several
    /// faults name the same ordinal.
    pub fn on_response(&mut self) -> RespFault {
        self.resp_seen += 1;
        let n = self.resp_seen;
        if self.drop.contains(&n) {
            RespFault::Drop
        } else if let Some(&bit) = self.corrupt.get(&n) {
            RespFault::Corrupt(bit)
        } else if self.dup.contains(&n) {
            RespFault::Duplicate
        } else if let Some(&cycles) = self.delay.get(&n) {
            RespFault::Delay(cycles)
        } else {
            RespFault::None
        }
    }

    /// Bit to flip in the next queue allocation's stored args, if any.
    pub fn on_spawn(&mut self) -> Option<u8> {
        self.spawn_seen += 1;
        self.parity.get(&self.spawn_seen).copied()
    }

    /// Tile faults due at or before `now`, in injection order.
    pub fn due_tile_faults(&mut self, now: u64) -> Vec<TileFaultEvent> {
        let start = self.next_tile_fault;
        let mut end = start;
        while end < self.tile_faults.len() && self.tile_faults[end].at <= now {
            end += 1;
        }
        self.next_tile_fault = end;
        self.tile_faults[start..end].to_vec()
    }

    /// Capture the schedule position (which ordinals have been consumed,
    /// which tile faults delivered, which responses are still held back)
    /// for the engine snapshot. The fault *plan* itself is configuration,
    /// not state: restore rebuilds the runtime from the plan via
    /// [`FaultRt::new`] and then reapplies this position.
    pub fn save_position(&self) -> FaultRtPosition {
        FaultRtPosition {
            next_tile_fault: self.next_tile_fault,
            resp_seen: self.resp_seen,
            spawn_seen: self.spawn_seen,
            delayed: self.delayed.clone(),
        }
    }

    /// Restore a position captured by [`FaultRt::save_position`].
    pub fn restore_position(&mut self, pos: &FaultRtPosition) {
        self.next_tile_fault = pos.next_tile_fault.min(self.tile_faults.len());
        self.resp_seen = pos.resp_seen;
        self.spawn_seen = pos.spawn_seen;
        self.delayed = pos.delayed.clone();
    }

    /// Delayed responses due at or before `now`, in original order.
    pub fn due_delayed(&mut self, now: u64) -> Vec<MemResp> {
        let mut due = Vec::new();
        self.delayed.retain(|&(at, resp)| {
            if at <= now {
                due.push(resp);
                false
            } else {
                true
            }
        });
        due
    }
}

/// Plain-data image of a [`FaultRt`]'s schedule position (snapshot
/// payload): the parts of the injection state that advance during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FaultRtPosition {
    pub next_tile_fault: usize,
    pub resp_seen: u64,
    pub spawn_seen: u64,
    pub delayed: Vec<(u64, MemResp)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_distinct() {
        let a = FaultPlan::random(7);
        let b = FaultPlan::random(7);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        let c = FaultPlan::random(8);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn tile_coordinates_wrap_to_geometry() {
        let plan = FaultPlan::new().with(Fault::TileWedge { unit: 9, tile: 9, at: 5 });
        let mut rt = FaultRt::new(&plan, &[1, 2]);
        let due = rt.due_tile_faults(5);
        assert_eq!(due.len(), 1);
        assert!(due[0].unit < 2);
        assert!(due[0].tile < 2);
        assert!(rt.due_tile_faults(1_000_000).is_empty(), "delivered once");
    }

    #[test]
    fn response_faults_trigger_on_their_ordinal() {
        let plan = FaultPlan::new()
            .with(Fault::DropResponse { nth: 2 })
            .with(Fault::CorruptResponse { nth: 3, bit: 5 });
        let mut rt = FaultRt::new(&plan, &[1]);
        assert_eq!(rt.on_response(), RespFault::None);
        assert_eq!(rt.on_response(), RespFault::Drop);
        assert_eq!(rt.on_response(), RespFault::Corrupt(5));
        assert_eq!(rt.on_response(), RespFault::None);
    }

    #[test]
    fn diagnosis_display_names_the_cycle() {
        let d = DeadlockDiagnosis {
            units: vec![
                UnitWaitState {
                    name: "fib::root".into(),
                    occupancy: 2,
                    capacity: 2,
                    fenced_tiles: 0,
                },
                UnitWaitState {
                    name: "fib::task1".into(),
                    occupancy: 1,
                    capacity: 2,
                    fenced_tiles: 0,
                },
            ],
            cycle: vec![
                WaitEdge { from: 0, to: 1, kind: WaitKind::Join },
                WaitEdge { from: 1, to: 0, kind: WaitKind::Call },
            ],
            oldest: Some(BlockedTask { unit: 0, slot: 0, spawned_at: 12 }),
            wedged: vec![],
        };
        let s = d.to_string();
        assert!(s.contains("fib::root --join--> fib::task1"), "{s}");
        assert!(s.contains("--call--> fib::root"), "{s}");
        assert!(s.contains("SID=0"), "{s}");
        assert!(s.contains("2/2 (full)"), "{s}");
    }
}
