//! # tapas-sim — cycle-level simulation of TAPAS-generated accelerators
//!
//! This crate is the "FPGA" of the reproduction: it executes the
//! architecture that TAPAS Stage 1/2 generate — a collection of **task
//! units**, one per static task, each with:
//!
//! * a **task queue** of `Ntasks` entries holding `Args[]`, the
//!   `ParentID = (SID, DyID)` and the child join counter `C#`, with entries
//!   moving through the paper's `READY → EXE → SYNC → COMPLETE` states;
//! * asynchronous **spawn/sync ports** with ready-valid backpressure
//!   (a spawn into a full queue stalls the producer);
//! * `Ntiles` **TXU tiles**, each executing one task instance as a
//!   latency-insensitive dataflow (per-block token schedule with fixed
//!   compute latencies and dynamic memory latencies);
//! * memory access through the shared **data box → L1 cache → DRAM** chain
//!   from `tapas-mem`.
//!
//! Recursion works exactly as §IV-C describes: a `call` node spawns the
//! callee's root task, saves the caller instance's dataflow context back
//! into its queue entry, and releases the tile — the task controller's
//! asynchronous queuing is what lets a task spawn itself without deadlock.
//!
//! # Observability
//!
//! The simulator can attribute every tile-cycle to a [`StallReason`]
//! (build the configuration with `.profile(ProfileLevel::Summary)`); the
//! resulting [`Profile`] satisfies an exact accounting invariant and feeds
//! a [`BottleneckReport`]. With `.trace_path(..)` the run also writes a
//! Chrome `chrome://tracing` event trace. Both are strictly passive:
//! enabling them never changes simulated timing or results.
//!
//! # Robustness
//!
//! A seeded [`FaultPlan`] (armed with `.faults(..)` on the builder)
//! deterministically injects tile stalls and wedges, dropped / duplicated /
//! corrupted / delayed memory responses, and queue-RAM parity errors.
//! Opposite it, [`FaultTolerance`] arms per-unit watchdogs, bounded memory
//! retry with exponential backoff, ECC on read data, queue parity checks,
//! and tile quarantine with graceful degradation. Every injected fault is
//! either **masked** (the run produces byte-identical results to a
//! fault-free run) or **detected** (the run fails with a typed
//! [`SimError`]) — never silently wrong. When progress stops, the engine
//! reports a [`DeadlockDiagnosis`] built from the unit wait-for graph
//! instead of a bare timeout.
//!
//! Finite task queues need not be fatal: arming
//! [`AdmissionControl`] (`admission: Some(..)` on [`AcceleratorConfig`])
//! makes any queue size survivable — refused spawns execute inline on the
//! spawning tile (work-first degradation), overflow entries spill through
//! the data box into a DRAM-backed arena and refill as slots drain, and
//! blocked-spawn cycles are broken by inlining the oldest spilled entry.
//! The default (`None`) takes none of these paths and is cycle-identical
//! to the unhardened simulator; [`SimStats`] counts `inline_spawns`,
//! `spills` and `refills`, and spill traffic shows up in the profiler as
//! a dedicated `spill-stall` bucket.
//!
//! # Performance knobs
//!
//! Two opt-in features rebalance the paper's fixed design, and both are
//! cycle-identical to seed when left at their defaults:
//!
//! * **Cross-unit work stealing** (`.steal(StealConfig { .. })`): an idle
//!   tile claims the oldest READY entry from a sibling unit's queue after
//!   a bounded steal latency. Victim probing is deterministic round-robin
//!   and the owner always wins a same-cycle pop/steal race. [`SimStats`]
//!   counts `steals` and `steal_fail`; the profiler charges in-flight
//!   steal cycles to a `steal-stall` bucket.
//! * **Banked non-blocking L1** (`.l1_banks(n)`): the shared cache splits
//!   into `n` address-interleaved banks with per-bank MSHRs, so
//!   same-cycle accesses to different banks grant in parallel. Lost bank
//!   arbitration is counted (`bank_conflicts`) and profiled as
//!   `bank-conflict`.
//!
//! # Examples
//!
//! Compile and simulate a one-task function:
//!
//! ```
//! use tapas_ir::{FunctionBuilder, Module, Type, interp::Val};
//! use tapas_sim::{Accelerator, AcceleratorConfig};
//!
//! let mut b = FunctionBuilder::new("inc", vec![Type::ptr(Type::I32)], Type::Void);
//! let p = b.param(0);
//! let v = b.load(p);
//! let one = b.const_int(Type::I32, 1);
//! let v2 = b.add(v, one);
//! b.store(p, v2);
//! b.ret(None);
//! let mut m = Module::new("demo");
//! let f = m.add_function(b.finish());
//!
//! let cfg = AcceleratorConfig::builder().build().unwrap();
//! let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
//! acc.mem_mut().write_bytes(0, &41i32.to_le_bytes());
//! let out = acc.run(f, &[Val::Int(0)]).unwrap();
//! assert_eq!(acc.mem().read_bits(0, 4), 42);
//! assert!(out.cycles > 0);
//! ```

#![warn(missing_docs)]

mod config;
mod engine;
pub mod fault;
pub mod profile;
pub mod snapshot;

pub use config::{
    AcceleratorConfig, AcceleratorConfigBuilder, AdmissionControl, ConfigError, SnapshotConfig,
    StealConfig,
};
pub use engine::{Accelerator, SimError, SimEvent, SimEventKind, SimOutcome, SimStats, UnitStats};
pub use fault::{
    BlockedTask, DeadlockDiagnosis, Fault, FaultPlan, FaultTolerance, UnitWaitState, WaitCause,
    WaitEdge, WaitKind,
};
pub use profile::{
    chrome_trace, BottleneckReport, BoundClass, NodeClass, Profile, ProfileLevel, QueueSummary,
    StallReason, TileProfile, UnitProfile,
};
pub use snapshot::{EngineSnapshot, SnapshotError};
