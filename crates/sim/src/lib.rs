//! # tapas-sim — cycle-level simulation of TAPAS-generated accelerators
//!
//! This crate is the "FPGA" of the reproduction: it executes the
//! architecture that TAPAS Stage 1/2 generate — a collection of **task
//! units**, one per static task, each with:
//!
//! * a **task queue** of `Ntasks` entries holding `Args[]`, the
//!   `ParentID = (SID, DyID)` and the child join counter `C#`, with entries
//!   moving through the paper's `READY → EXE → SYNC → COMPLETE` states;
//! * asynchronous **spawn/sync ports** with ready-valid backpressure
//!   (a spawn into a full queue stalls the producer);
//! * `Ntiles` **TXU tiles**, each executing one task instance as a
//!   latency-insensitive dataflow (per-block token schedule with fixed
//!   compute latencies and dynamic memory latencies);
//! * memory access through the shared **data box → L1 cache → DRAM** chain
//!   from `tapas-mem`.
//!
//! Recursion works exactly as §IV-C describes: a `call` node spawns the
//! callee's root task, saves the caller instance's dataflow context back
//! into its queue entry, and releases the tile — the task controller's
//! asynchronous queuing is what lets a task spawn itself without deadlock.
//!
//! # Examples
//!
//! Compile and simulate a one-task function:
//!
//! ```
//! use tapas_ir::{FunctionBuilder, Module, Type, interp::Val};
//! use tapas_sim::{Accelerator, AcceleratorConfig};
//!
//! let mut b = FunctionBuilder::new("inc", vec![Type::ptr(Type::I32)], Type::Void);
//! let p = b.param(0);
//! let v = b.load(p);
//! let one = b.const_int(Type::I32, 1);
//! let v2 = b.add(v, one);
//! b.store(p, v2);
//! b.ret(None);
//! let mut m = Module::new("demo");
//! let f = m.add_function(b.finish());
//!
//! let mut acc = Accelerator::elaborate(&m, &AcceleratorConfig::default()).unwrap();
//! acc.mem_mut().write_bytes(0, &41i32.to_le_bytes());
//! let out = acc.run(f, &[Val::Int(0)]).unwrap();
//! assert_eq!(acc.mem().read_bits(0, 4), 42);
//! assert!(out.cycles > 0);
//! ```

#![warn(missing_docs)]

mod engine;

pub use engine::{Accelerator, SimError, SimEvent, SimEventKind, SimOutcome, SimStats, UnitStats};

use std::collections::HashMap;
use tapas_dfg::LatencyModel;
use tapas_mem::{CacheConfig, DataBoxConfig, DramConfig};

/// Configuration of the elaborated accelerator (the paper's Stage 3
/// parameters: queue depths, tiles per task, memory system).
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Task queue entries per task unit (`Ntasks`).
    pub ntasks: usize,
    /// Default TXU tiles per task unit (`Ntiles`).
    pub ntiles: usize,
    /// Per-task tile overrides, keyed by task name (e.g. `"dedup::task2"`).
    pub tile_overrides: HashMap<String, usize>,
    /// Shared L1 cache parameters.
    pub cache: CacheConfig,
    /// Optional L2 between the L1 and DRAM (the §VI cache-hierarchy
    /// improvement; `None` reproduces the paper's released memory system).
    pub l2: Option<CacheConfig>,
    /// DRAM/AXI parameters.
    pub dram: DramConfig,
    /// Data box issue width and queue depth (ports are sized automatically).
    pub databox: DataBoxConfig,
    /// Functional-unit latencies.
    pub latencies: LatencyModel,
    /// Cycles for the spawn handshake (queue allocation + args write).
    pub spawn_cost: u64,
    /// Cycles to resume from a sync join.
    pub sync_cost: u64,
    /// Cycles between successive block dataflows of one instance.
    pub block_transition: u64,
    /// Accelerator memory size in bytes.
    pub mem_bytes: usize,
    /// Abort the simulation after this many cycles.
    pub max_cycles: u64,
    /// Record a task-level event trace (spawn/dispatch/suspend/complete),
    /// retrievable with [`Accelerator::take_events`]. Off by default —
    /// long runs generate many events.
    pub record_events: bool,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            ntasks: 32,
            ntiles: 1,
            tile_overrides: HashMap::new(),
            cache: CacheConfig::default(),
            l2: None,
            dram: DramConfig::default(),
            databox: DataBoxConfig::default(),
            latencies: LatencyModel::default(),
            spawn_cost: 10,
            sync_cost: 2,
            block_transition: 2,
            mem_bytes: 16 * 1024 * 1024,
            max_cycles: 500_000_000,
            record_events: false,
        }
    }
}

impl AcceleratorConfig {
    /// Tiles for the task with the given name.
    pub fn tiles_for(&self, task_name: &str) -> usize {
        self.tile_overrides.get(task_name).copied().unwrap_or(self.ntiles).max(1)
    }

    /// Builder-style override of the tile count for one task.
    pub fn with_tiles(mut self, task_name: &str, tiles: usize) -> Self {
        self.tile_overrides.insert(task_name.to_string(), tiles);
        self
    }

    /// Builder-style setting of the default tile count.
    pub fn with_default_tiles(mut self, tiles: usize) -> Self {
        self.ntiles = tiles;
        self
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn tile_overrides_apply() {
        let c = AcceleratorConfig::default().with_default_tiles(2).with_tiles("f::task1", 8);
        assert_eq!(c.tiles_for("f::task1"), 8);
        assert_eq!(c.tiles_for("f::root"), 2);
    }

    #[test]
    fn tiles_never_zero() {
        let c = AcceleratorConfig::default().with_tiles("x", 0);
        assert_eq!(c.tiles_for("x"), 1);
    }
}
