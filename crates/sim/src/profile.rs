//! Cycle-attribution profiling: where did every tile-cycle go?
//!
//! When [`AcceleratorConfig::profile`](crate::AcceleratorConfig) is not
//! [`ProfileLevel::Off`], the engine charges **exactly one**
//! [`StallReason`] to every tile on every simulated cycle and aggregates
//! the counts into a hierarchical [`Profile`]: per task unit → per tile →
//! (at [`ProfileLevel::Full`]) per DFG node class. The attribution pass
//! runs once per engine-loop iteration; when the event-driven core skips
//! a quiescent window it attributes the whole window in bulk — exact
//! because, by the skip's precondition, no tile's classification can
//! change mid-window — so the accounting stays exact by construction:
//! [`Profile::check_invariant`] verifies that each tile's attributed
//! cycles sum to the run's cycle count, stepped or skipped.
//!
//! The same instrumentation feeds a streaming task-lifecycle event trace
//! that [`chrome_trace`] renders in the Chrome `chrome://tracing` /
//! Perfetto trace-event JSON format: task instances become duration
//! events, spawns become flow arrows from parent to child, and cache
//! misses become instant events.

use crate::engine::{SimEvent, SimEventKind};

/// Why a tile spent a cycle the way it did. One reason is charged per
/// tile per cycle; [`StallReason::Busy`] is "the tile did useful work".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallReason {
    /// The tile made forward progress: a node issued, a fixed-latency
    /// functional unit was mid-computation, or a block transition was in
    /// flight.
    Busy,
    /// Dataflow nodes were pending but their operands were not ready and
    /// nothing else was in flight (a dependence-height limit).
    WaitingOperand,
    /// A memory request sat in the data box (port queue or an in-flight
    /// hit's round trip).
    WaitingDatabox,
    /// An outstanding request missed in the cache and was waiting on the
    /// line fill.
    CacheMiss,
    /// The cache refused the request this cycle: all MSHRs (or all ways of
    /// the target set) were busy.
    MshrFull,
    /// The missing line's fetch was additionally queued behind the busy
    /// DRAM channel.
    DramQueue,
    /// A `detach` or call-spawn was blocked on a full downstream task
    /// queue (ready-valid backpressure).
    SpawnBackpressure,
    /// The tile was idle while queue entries sat parked at a `sync` or a
    /// serial call, waiting on children.
    SyncWait,
    /// The tile was idle with no dispatchable work (an empty or
    /// still-handshaking queue) — spawn-rate limited.
    QueueEmpty,
    /// The cycle was lost to an injected fault or its recovery: a stalled,
    /// wedged, or quarantined tile, or a memory access on its retry path.
    FaultStall,
    /// The cycle was spent on bounded-resource admission: a tile executing
    /// a refused spawn inline, or idling while its unit's overflow entries
    /// spilled to or refilled from the DRAM-backed arena.
    SpillStall,
    /// The tile was covering the bounded latency of a cross-unit work
    /// steal: the entry was claimed from a sibling queue but its payload
    /// was still in flight over the steal port.
    StealStall,
    /// A memory request lost L1 bank arbitration: the target bank had
    /// already consumed its grants this cycle and the request stayed
    /// queued in the data box.
    BankConflict,
}

impl StallReason {
    /// All reasons, in charge-priority order.
    pub const ALL: [StallReason; 13] = [
        StallReason::Busy,
        StallReason::WaitingOperand,
        StallReason::WaitingDatabox,
        StallReason::CacheMiss,
        StallReason::MshrFull,
        StallReason::DramQueue,
        StallReason::SpawnBackpressure,
        StallReason::SyncWait,
        StallReason::QueueEmpty,
        StallReason::FaultStall,
        StallReason::SpillStall,
        StallReason::StealStall,
        StallReason::BankConflict,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::Busy => "busy",
            StallReason::WaitingOperand => "operand-wait",
            StallReason::WaitingDatabox => "databox-wait",
            StallReason::CacheMiss => "cache-miss",
            StallReason::MshrFull => "mshr-full",
            StallReason::DramQueue => "dram-queue",
            StallReason::SpawnBackpressure => "spawn-backpressure",
            StallReason::SyncWait => "sync-wait",
            StallReason::QueueEmpty => "queue-empty",
            StallReason::FaultStall => "fault-stall",
            StallReason::SpillStall => "spill-stall",
            StallReason::StealStall => "steal-stall",
            StallReason::BankConflict => "bank-conflict",
        }
    }
}

/// How much per-cycle bookkeeping the engine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileLevel {
    /// No profiling; the engine loop carries no instrumentation cost and
    /// the [`SimOutcome`](crate::SimOutcome) has no profile.
    #[default]
    Off,
    /// Per-tile stall attribution and per-unit queue occupancy.
    Summary,
    /// Everything in `Summary` plus the per-unit DFG node-class mix.
    Full,
}

/// Classes of DFG nodes, for the [`ProfileLevel::Full`] issue mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Integer ALU ops, comparisons, selects and casts.
    IntAlu,
    /// Floating-point ALU ops and comparisons.
    FloatAlu,
    /// Loads, stores and address generation.
    Memory,
    /// Control dataflow (phi nodes).
    Control,
    /// Spawn-bridged serial calls.
    Spawn,
}

impl NodeClass {
    /// All classes, in display order.
    pub const ALL: [NodeClass; 5] = [
        NodeClass::IntAlu,
        NodeClass::FloatAlu,
        NodeClass::Memory,
        NodeClass::Control,
        NodeClass::Spawn,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            NodeClass::IntAlu => "int-alu",
            NodeClass::FloatAlu => "float-alu",
            NodeClass::Memory => "memory",
            NodeClass::Control => "control",
            NodeClass::Spawn => "spawn",
        }
    }
}

/// Stall-attribution counters for one TXU tile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileProfile {
    /// Cycles charged to each reason, indexed by [`StallReason::ALL`]
    /// order.
    pub stalls: [u64; 13],
}

impl TileProfile {
    /// Cycles charged to `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        self.stalls[reason as usize]
    }

    /// Total attributed cycles (must equal the run's cycle count).
    pub fn total(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Task-queue occupancy summary for one unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueSummary {
    /// Mean live entries per cycle.
    pub mean_occupancy: f64,
    /// Peak live entries in any cycle.
    pub peak: u32,
    /// Cycles the queue sat completely full (spawns backpressured).
    pub full_cycles: u64,
    /// Queue capacity (`Ntasks`).
    pub capacity: u32,
}

/// Profile of one task unit: its tiles plus queue and node-mix summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitProfile {
    /// Task unit (= task) name.
    pub name: String,
    /// One entry per TXU tile.
    pub tiles: Vec<TileProfile>,
    /// Task-queue occupancy over the run.
    pub queue: QueueSummary,
    /// Nodes issued per class ([`NodeClass::ALL`] order); all zero below
    /// [`ProfileLevel::Full`].
    pub node_mix: [u64; 5],
}

impl UnitProfile {
    /// Cycles charged to `reason`, summed over this unit's tiles.
    pub fn stall_total(&self, reason: StallReason) -> u64 {
        self.tiles.iter().map(|t| t.get(reason)).sum()
    }
}

/// The hierarchical cycle-attribution profile of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// The level the run was profiled at.
    pub level: ProfileLevel,
    /// Cycles the run simulated.
    pub cycles: u64,
    /// Per-unit breakdown, in elaboration order.
    pub units: Vec<UnitProfile>,
}

impl Profile {
    /// Cycles charged to `reason` across every tile of every unit.
    pub fn stall_total(&self, reason: StallReason) -> u64 {
        self.units.iter().map(|u| u.stall_total(reason)).sum()
    }

    /// Total tiles in the design.
    pub fn tile_count(&self) -> usize {
        self.units.iter().map(|u| u.tiles.len()).sum()
    }

    /// Total tile-cycles attributed (= `cycles × tile_count` when the
    /// accounting invariant holds).
    pub fn attributed_cycles(&self) -> u64 {
        self.units.iter().flat_map(|u| &u.tiles).map(TileProfile::total).sum()
    }

    /// Verify the accounting invariant: every tile's attributed cycles sum
    /// exactly to the run's cycle count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first tile whose books don't balance.
    pub fn check_invariant(&self) -> Result<(), String> {
        for u in &self.units {
            for (i, t) in u.tiles.iter().enumerate() {
                let sum = t.total();
                if sum != self.cycles {
                    return Err(format!(
                        "unit {} tile {i}: attributed {sum} cycles, simulated {}",
                        u.name, self.cycles
                    ));
                }
            }
        }
        Ok(())
    }

    /// Classify what bounds the run. See [`BottleneckReport`].
    pub fn bottleneck(&self) -> BottleneckReport {
        BottleneckReport::from_profile(self)
    }
}

/// What fundamentally limits a run's performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundClass {
    /// Tiles spend their cycles computing — more tiles or faster
    /// functional units would help.
    Compute,
    /// Tiles wait on the memory system — cache misses, MSHR pressure or
    /// the DRAM channel dominate.
    Memory,
    /// Tiles starve or park on task-parallel machinery — spawn rate,
    /// sync joins or queue capacity dominate.
    Spawn,
}

impl BoundClass {
    /// Display label, e.g. `"memory-bound"`.
    pub fn label(self) -> &'static str {
        match self {
            BoundClass::Compute => "compute-bound",
            BoundClass::Memory => "memory-bound",
            BoundClass::Spawn => "spawn-bound",
        }
    }
}

/// The profiler's verdict on a run, with the evidence.
///
/// Spawn-backpressure cycles are a symptom of downstream congestion (the
/// producer is blocked *because* the consumer is slow), so before
/// classifying they are redistributed proportionally over the other three
/// buckets; the report keeps the raw count in
/// [`BottleneckReport::backpressure_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// The verdict.
    pub class: BoundClass,
    /// Fraction of tile-cycles doing or waiting on compute
    /// (busy + operand waits).
    pub compute_frac: f64,
    /// Fraction of tile-cycles waiting on memory
    /// (data box + cache miss + MSHR + DRAM queue).
    pub memory_frac: f64,
    /// Fraction of tile-cycles idle on task machinery
    /// (sync waits + empty queues).
    pub spawn_frac: f64,
    /// Raw spawn-backpressure tile-cycles (redistributed before
    /// classification).
    pub backpressure_cycles: u64,
    /// The single largest stall reason overall.
    pub dominant: StallReason,
}

impl BottleneckReport {
    fn from_profile(p: &Profile) -> BottleneckReport {
        let total = |r: StallReason| p.stall_total(r) as f64;
        let compute = total(StallReason::Busy) + total(StallReason::WaitingOperand);
        // Fault stalls bucket with memory: retry waits and frozen tiles
        // present to the rest of the design exactly like slow memory.
        let memory = total(StallReason::WaitingDatabox)
            + total(StallReason::CacheMiss)
            + total(StallReason::MshrFull)
            + total(StallReason::DramQueue)
            + total(StallReason::FaultStall)
            + total(StallReason::BankConflict);
        // Spill stalls bucket with spawn: they are the price of task-queue
        // capacity pressure, just paid inline instead of by backpressure.
        // Steal stalls do too: they are the latency of rebalancing work
        // across task queues, not of computing or of memory.
        let spawn = total(StallReason::SyncWait)
            + total(StallReason::QueueEmpty)
            + total(StallReason::SpillStall)
            + total(StallReason::StealStall);
        let bp = total(StallReason::SpawnBackpressure);
        // Backpressure is caused by whatever the rest of the design is
        // doing; spread it proportionally (all-backpressure runs count as
        // spawn-bound).
        let base = compute + memory + spawn;
        let (compute, memory, spawn) = if base > 0.0 {
            (compute + bp * compute / base, memory + bp * memory / base, spawn + bp * spawn / base)
        } else {
            (compute, memory, spawn + bp)
        };
        let all = (compute + memory + spawn).max(1.0);
        let class = if memory >= compute && memory >= spawn {
            BoundClass::Memory
        } else if spawn >= compute {
            BoundClass::Spawn
        } else {
            BoundClass::Compute
        };
        let dominant = StallReason::ALL
            .into_iter()
            .max_by_key(|&r| p.stall_total(r))
            // invariant: ALL is a non-empty const array.
            .expect("non-empty reason list");
        BottleneckReport {
            class,
            compute_frac: compute / all,
            memory_frac: memory / all,
            spawn_frac: spawn / all,
            backpressure_cycles: bp as u64,
            dominant,
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a recorded event trace in the Chrome `chrome://tracing` /
/// Perfetto trace-event JSON format.
///
/// Each task unit becomes a thread (named via `"M"` metadata events); each
/// dispatched span of a task instance becomes an `"X"` duration event;
/// each spawn with a known parent becomes an `"s"`/`"f"` flow arrow; each
/// cache miss becomes an `"i"` instant event. One cycle is rendered as one
/// microsecond. The output is deterministic for a given event list.
pub fn chrome_trace(events: &[SimEvent], unit_names: &[String]) -> String {
    use std::collections::HashMap;
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 64 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    macro_rules! emit {
        ($($arg:tt)*) => {{
            if !first {
                out.push(',');
            }
            first = false;
            write!(out, $($arg)*).expect("writing to a String cannot fail");
        }};
    }
    for (i, name) in unit_names.iter().enumerate() {
        emit!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        );
    }
    // (unit, slot) -> (dispatch cycle, tile) for the open span.
    let mut open: HashMap<(usize, usize), (u64, usize)> = HashMap::new();
    let mut flow_id = 0u64;
    for e in events {
        match e.kind {
            SimEventKind::Spawned { parent } => {
                if let Some((pu, _ps)) = parent {
                    flow_id += 1;
                    emit!(
                        "{{\"ph\":\"s\",\"id\":{flow_id},\"pid\":0,\"tid\":{pu},\
                         \"ts\":{},\"name\":\"spawn\",\"cat\":\"spawn\"}}",
                        e.cycle
                    );
                    emit!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"pid\":0,\
                         \"tid\":{},\"ts\":{},\"name\":\"spawn\",\"cat\":\"spawn\"}}",
                        e.unit,
                        e.cycle
                    );
                }
            }
            SimEventKind::Dispatched { tile } => {
                open.insert((e.unit, e.slot), (e.cycle, tile));
            }
            SimEventKind::SyncWait | SimEventKind::CallWait | SimEventKind::Completed => {
                if let Some((start, tile)) = open.remove(&(e.unit, e.slot)) {
                    let name = unit_names.get(e.unit).map(String::as_str).unwrap_or("task");
                    emit!(
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{start},\"dur\":{},\
                         \"name\":\"{}\",\"cat\":\"task\",\
                         \"args\":{{\"slot\":{},\"tile\":{tile}}}}}",
                        e.unit,
                        (e.cycle - start).max(1),
                        esc(name),
                        e.slot
                    );
                }
            }
            SimEventKind::Stolen { by, tile } => {
                // Instant marker on the victim's track; the following
                // Dispatched event opens the execution span as usual.
                emit!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\
                     \"name\":\"steal\",\"cat\":\"steal\",\
                     \"args\":{{\"by\":{by},\"tile\":{tile},\"slot\":{}}}}}",
                    e.unit,
                    e.cycle,
                    e.slot
                );
            }
            SimEventKind::CacheMiss { addr } => {
                emit!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\
                     \"name\":\"cache-miss\",\"cat\":\"mem\",\"args\":{{\"addr\":{addr}}}}}",
                    e.unit,
                    e.cycle
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"tapas-sim\",\"clock\":\"1 cycle = 1us\"}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tile_profile(a: [u64; 13], b: [u64; 13]) -> Profile {
        let cycles: u64 = a.iter().sum();
        Profile {
            level: ProfileLevel::Summary,
            cycles,
            units: vec![UnitProfile {
                name: "u".into(),
                tiles: vec![TileProfile { stalls: a }, TileProfile { stalls: b }],
                queue: QueueSummary::default(),
                node_mix: [0; 5],
            }],
        }
    }

    #[test]
    fn invariant_detects_imbalance() {
        let mut p = two_tile_profile(
            [10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            [5, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        );
        assert!(p.check_invariant().is_ok());
        p.units[0].tiles[1].stalls[0] = 4;
        let err = p.check_invariant().unwrap_err();
        assert!(err.contains("tile 1"), "{err}");
    }

    #[test]
    fn bottleneck_classes() {
        // Memory dominated.
        let p = two_tile_profile(
            [1, 0, 3, 4, 0, 2, 0, 0, 0, 0, 0, 0, 0],
            [1, 0, 3, 4, 0, 2, 0, 0, 0, 0, 0, 0, 0],
        );
        let r = p.bottleneck();
        assert_eq!(r.class, BoundClass::Memory);
        assert!(r.memory_frac > r.compute_frac);
        assert_eq!(r.dominant, StallReason::CacheMiss);
        // Spawn/queue dominated.
        let p = two_tile_profile(
            [2, 0, 0, 0, 0, 0, 0, 5, 3, 0, 0, 0, 0],
            [2, 0, 0, 0, 0, 0, 0, 5, 3, 0, 0, 0, 0],
        );
        assert_eq!(p.bottleneck().class, BoundClass::Spawn);
        // Compute dominated.
        let p = two_tile_profile(
            [8, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            [8, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        );
        assert_eq!(p.bottleneck().class, BoundClass::Compute);
        // Spill stalls count toward the spawn bucket.
        let p = two_tile_profile(
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0],
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0],
        );
        let r = p.bottleneck();
        assert_eq!(r.class, BoundClass::Spawn);
        assert_eq!(r.dominant, StallReason::SpillStall);
    }

    #[test]
    fn new_buckets_classify_and_balance() {
        // Steal stalls are spawn-machinery time: the run is rebalancing
        // work, not computing.
        let p = two_tile_profile(
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0],
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0],
        );
        let r = p.bottleneck();
        assert_eq!(r.class, BoundClass::Spawn);
        assert_eq!(r.dominant, StallReason::StealStall);
        // Bank conflicts are memory time: the L1 is the contended resource.
        let p = two_tile_profile(
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7],
            [2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7],
        );
        let r = p.bottleneck();
        assert_eq!(r.class, BoundClass::Memory);
        assert_eq!(r.dominant, StallReason::BankConflict);
        // The accounting invariant stays exact with the widened array.
        assert!(p.check_invariant().is_ok());
        assert_eq!(p.stall_total(StallReason::BankConflict), 14);
        assert_eq!(StallReason::ALL.len(), 13);
        assert_eq!(StallReason::StealStall.label(), "steal-stall");
        assert_eq!(StallReason::BankConflict.label(), "bank-conflict");
    }

    #[test]
    fn backpressure_redistributes_to_the_congested_side() {
        // One tile all backpressure, one tile mostly memory: the
        // backpressure is a memory symptom here.
        let p = two_tile_profile(
            [1, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0],
            [2, 0, 4, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        );
        let r = p.bottleneck();
        assert_eq!(r.class, BoundClass::Memory);
        assert_eq!(r.backpressure_cycles, 9);
    }

    #[test]
    fn chrome_trace_renders_all_event_shapes() {
        let names = vec!["root".to_string(), "task".to_string()];
        let events = vec![
            SimEvent { cycle: 0, unit: 0, slot: 0, kind: SimEventKind::Spawned { parent: None } },
            SimEvent { cycle: 2, unit: 0, slot: 0, kind: SimEventKind::Dispatched { tile: 0 } },
            SimEvent {
                cycle: 4,
                unit: 1,
                slot: 1,
                kind: SimEventKind::Spawned { parent: Some((0, 0)) },
            },
            SimEvent { cycle: 5, unit: 0, slot: 0, kind: SimEventKind::SyncWait },
            SimEvent { cycle: 6, unit: 1, slot: 1, kind: SimEventKind::Dispatched { tile: 0 } },
            SimEvent { cycle: 7, unit: 1, slot: 1, kind: SimEventKind::CacheMiss { addr: 64 } },
            SimEvent { cycle: 9, unit: 1, slot: 1, kind: SimEventKind::Completed },
        ];
        let json = chrome_trace(&events, &names);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"addr\":64"));
        // Deterministic.
        assert_eq!(json, chrome_trace(&events, &names));
    }
}
