//! Crash-consistent engine snapshots.
//!
//! An [`EngineSnapshot`] is a versioned, checksummed image of every
//! clocked component of an [`Accelerator`](crate::Accelerator) mid-run:
//! tiles (node states, `done_at`s, inline/steal timers), task queues and
//! spilled entries, the memory scoreboard, data-box/cache/DRAM state,
//! admission control, profiler accumulators, the fault-schedule position
//! and the event-driven core's counters. Restoring a snapshot into a
//! freshly elaborated accelerator (same module, same configuration) and
//! running to completion is **byte-identical** — cycles, `SimStats`,
//! profile and JSON output — to the uninterrupted run.
//!
//! # On-disk format
//!
//! ```text
//! magic "TAPASNAP" | version u32 | fingerprint u64 | cycle u64
//!   | payload_len u64 | payload bytes | fnv1a64 checksum u64
//! ```
//!
//! All integers little-endian. The checksum covers everything before it,
//! so a torn or bit-flipped file is detected on load. The `fingerprint`
//! hashes the elaborated design's geometry and the dynamic configuration
//! knobs (excluding the snapshot/halt test hooks themselves), so a
//! snapshot cannot be restored into an incompatible design.
//!
//! # Crash consistency and the fallback ladder
//!
//! [`EngineSnapshot::write_atomic`] writes to a temporary file and
//! renames it over the target, first rotating any existing snapshot to
//! `<path>.prev`. A consumer killed mid-write therefore degrades
//! gracefully: [`load_latest`] tries the current file, then `.prev`, and
//! reports `None` (restart from cycle 0) only when neither verifies.

use std::path::{Path, PathBuf};

/// First eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TAPASNAP";

/// Payload layout version; bumped whenever the engine's encoded state
/// changes shape. Snapshots from other versions are refused on load.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A captured engine state: the header fields plus the opaque payload the
/// engine's encoder produced. Obtain one from a periodic write during
/// [`Accelerator::run`](crate::Accelerator::run), from
/// [`Accelerator::take_halt_snapshot`](crate::Accelerator::take_halt_snapshot),
/// or by [`EngineSnapshot::load`]; consume it with
/// [`Accelerator::resume`](crate::Accelerator::resume).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Design/configuration fingerprint the payload was captured under.
    pub fingerprint: u64,
    /// Absolute engine cycle at the capture boundary.
    pub cycle: u64,
    pub(crate) payload: Vec<u8>,
}

/// Why a snapshot could not be written, read or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure while writing or reading.
    Io(String),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's layout version is not [`SNAPSHOT_VERSION`].
    Version {
        /// The version found in the file.
        found: u32,
    },
    /// The file is shorter than its header or declared payload promises.
    Truncated,
    /// The trailing checksum does not match the file contents.
    Checksum,
    /// The snapshot was captured under a different design/configuration.
    Fingerprint {
        /// Fingerprint of the design being restored into.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The payload did not decode against the current design.
    Decode(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not a TAPAS snapshot (bad magic)"),
            SnapshotError::Version { found } => {
                write!(f, "snapshot layout version {found} != {SNAPSHOT_VERSION}")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Checksum => write!(f, "snapshot checksum mismatch (corrupt or torn)"),
            SnapshotError::Fingerprint { expected, found } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match this design ({expected:#018x})"
            ),
            SnapshotError::Decode(e) => write!(f, "snapshot payload does not decode: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the snapshot checksum and fingerprint primitive.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where the previous good snapshot rotates to when `path` is rewritten.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".prev");
    PathBuf::from(s)
}

impl EngineSnapshot {
    /// Serialize to the on-disk format (header + payload + checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44 + self.payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and verify the on-disk format.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for a wrong magic, an unknown layout
    /// version, a truncated file or a checksum mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<EngineSnapshot, SnapshotError> {
        if bytes.len() < 8 || bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 44 {
            return Err(SnapshotError::Truncated);
        }
        let rd_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let rd_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = rd_u32(8);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version { found: version });
        }
        let fingerprint = rd_u64(12);
        let cycle = rd_u64(20);
        let payload_len = rd_u64(28) as usize;
        let total = 36usize
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or(SnapshotError::Truncated)?;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        let sum = rd_u64(36 + payload_len);
        if fnv64(&bytes[..36 + payload_len]) != sum {
            return Err(SnapshotError::Checksum);
        }
        Ok(EngineSnapshot { fingerprint, cycle, payload: bytes[36..36 + payload_len].to_vec() })
    }

    /// Write the snapshot crash-consistently: the bytes land in a
    /// temporary file first, any existing snapshot rotates to
    /// `<path>.prev`, and a rename publishes the new file. A kill at any
    /// point leaves at least one verifiable snapshot on disk.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the directory cannot be created
    /// or any write/rename fails.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let io = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io)?;
            }
        }
        let tmp = {
            let mut s = path.as_os_str().to_os_string();
            s.push(format!(".tmp.{}", std::process::id()));
            PathBuf::from(s)
        };
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        if path.exists() {
            std::fs::rename(path, prev_path(path)).map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Load and verify one snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] when the file cannot be read or fails
    /// verification ([`EngineSnapshot::from_bytes`]).
    pub fn load(path: &Path) -> Result<EngineSnapshot, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        EngineSnapshot::from_bytes(&bytes)
    }
}

/// Little-endian byte writer for the snapshot payload. Deliberately
/// minimal — fixed-width integers, bools and length-prefixed byte runs —
/// so the payload layout is fully determined by the encode call sequence.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Checked reader over a snapshot payload; every accessor reports a
/// truncated or malformed buffer instead of panicking, so a corrupt
/// payload surfaces as [`SnapshotError::Decode`].
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b:#x}")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "length overflows usize".to_string())
    }

    /// A length to drive a decode loop, sanity-bounded so a corrupt
    /// length cannot provoke an enormous allocation before the payload
    /// runs out.
    pub fn len(&mut self) -> Result<usize, String> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos).saturating_add(1).saturating_mul(64) {
            return Err(format!("implausible collection length {n}"));
        }
        Ok(n)
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Assert the payload was consumed exactly — a layout drift between
    /// encoder and decoder shows up here rather than as silent garbage.
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after decode", self.buf.len() - self.pos))
        }
    }
}

/// Walk the fallback ladder: the current snapshot at `path`, then the
/// rotated `<path>.prev`, then nothing (restart from cycle 0). Returns the
/// first snapshot that verifies plus a note for every rung that did not.
pub fn load_latest(path: &Path) -> (Option<EngineSnapshot>, Vec<String>) {
    let mut notes = Vec::new();
    for candidate in [path.to_path_buf(), prev_path(path)] {
        if !candidate.exists() {
            continue;
        }
        match EngineSnapshot::load(&candidate) {
            Ok(snap) => return (Some(snap), notes),
            Err(e) => notes.push(format!("{}: {e}", candidate.display())),
        }
    }
    (None, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tapas-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.snap", std::process::id()))
    }

    fn sample() -> EngineSnapshot {
        EngineSnapshot { fingerprint: 0xfeed_beef, cycle: 1234, payload: vec![1, 2, 3, 4, 5] }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample();
        let decoded = EngineSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn corruption_is_detected() {
        let snap = sample();
        let mut bytes = snap.to_bytes();
        // Flip one payload bit.
        bytes[40] ^= 0x10;
        assert_eq!(EngineSnapshot::from_bytes(&bytes).unwrap_err(), SnapshotError::Checksum);
        // Torn tail.
        let torn = &snap.to_bytes()[..snap.to_bytes().len() - 3];
        assert_eq!(EngineSnapshot::from_bytes(torn).unwrap_err(), SnapshotError::Truncated);
        // Foreign file.
        assert_eq!(
            EngineSnapshot::from_bytes(b"not a snapshot").unwrap_err(),
            SnapshotError::BadMagic
        );
        // Future layout version.
        let mut future = snap.to_bytes();
        future[8] = 99;
        assert!(matches!(
            EngineSnapshot::from_bytes(&future).unwrap_err(),
            SnapshotError::Version { found: 99 }
        ));
    }

    #[test]
    fn atomic_write_rotates_and_fallback_ladder_recovers() {
        let path = tmp("ladder");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();

        let first = EngineSnapshot { cycle: 100, ..sample() };
        first.write_atomic(&path).unwrap();
        let second = EngineSnapshot { cycle: 200, ..sample() };
        second.write_atomic(&path).unwrap();
        assert_eq!(EngineSnapshot::load(&path).unwrap().cycle, 200);
        assert_eq!(EngineSnapshot::load(&prev_path(&path)).unwrap().cycle, 100);

        // Corrupt the current file: the ladder falls back to .prev.
        std::fs::write(&path, b"TAPASNAPgarbage").unwrap();
        let (got, notes) = load_latest(&path);
        assert_eq!(got.unwrap().cycle, 100);
        assert_eq!(notes.len(), 1, "the corrupt rung is noted");

        // Corrupt both: degrade gracefully to nothing.
        std::fs::write(prev_path(&path), b"junk").unwrap();
        let (got, notes) = load_latest(&path);
        assert!(got.is_none());
        assert_eq!(notes.len(), 2);

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
    }

    #[test]
    fn missing_files_fall_through_silently() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(prev_path(&path)).ok();
        let (got, notes) = load_latest(&path);
        assert!(got.is_none());
        assert!(notes.is_empty(), "absent files are not corruption");
    }
}
