//! Fault-injection acceptance tests: every injected fault is either
//! **masked** (results byte-identical to a fault-free run) or **detected**
//! (the run fails with a typed [`SimError`]) — never silently wrong.

use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FuncId, FunctionBuilder, Module, Type};
use tapas_sim::{
    Accelerator, AcceleratorConfig, Fault, FaultPlan, FaultTolerance, SimError, SimOutcome,
    WaitCause,
};

/// Parallel-for over `n` i32 cells: `a[i] += 1` per detached task.
fn build_pfor_inc(m: &mut Module) -> FuncId {
    let mut b = FunctionBuilder::new("pfor_inc", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
    let header = b.create_block("header");
    let spawn = b.create_block("spawn");
    let task = b.create_block("task");
    let latch = b.create_block("latch");
    let exit = b.create_block("exit");
    let done = b.create_block("done");
    let (a, n) = (b.param(0), b.param(1));
    let zero = b.const_int(Type::I64, 0);
    let one = b.const_int(Type::I64, 1);
    let entry = b.current_block();
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, zero)]);
    let c = b.icmp(CmpPred::Slt, i, n);
    b.cond_br(c, spawn, exit);
    b.switch_to(spawn);
    b.detach(task, latch);
    b.switch_to(task);
    let p = b.gep_index(a, i);
    let v = b.load(p);
    let one32 = b.const_int(Type::I32, 1);
    let v2 = b.add(v, one32);
    b.store(p, v2);
    b.reattach(latch);
    b.switch_to(latch);
    let i2 = b.add(i, one);
    b.add_phi_incoming(i, latch, i2);
    b.br(header);
    b.switch_to(exit);
    b.sync(done);
    b.switch_to(done);
    b.ret(None);
    m.add_function(b.finish())
}

/// Recursive parallel fib via detach + call-bridged recursion.
fn build_parallel_fib(m: &mut Module) -> FuncId {
    let mut b = FunctionBuilder::new("fib", vec![Type::I32, Type::ptr(Type::I32)], Type::I32);
    let rec = b.create_block("rec");
    let base = b.create_block("base");
    let task = b.create_block("task");
    let cont = b.create_block("cont");
    let after = b.create_block("after");
    let (n, out) = (b.param(0), b.param(1));
    let two = b.const_int(Type::I32, 2);
    let c = b.icmp(CmpPred::Slt, n, two);
    b.cond_br(c, base, rec);
    b.switch_to(base);
    b.ret(Some(n));
    b.switch_to(rec);
    b.detach(task, cont);
    b.switch_to(task);
    let one = b.const_int(Type::I32, 1);
    let n1 = b.sub(n, one);
    let one64 = b.const_int(Type::I64, 1);
    let sub_out = b.gep_index(out, one64);
    let r1 = b.call(FuncId(0), vec![n1, sub_out], Type::I32).unwrap();
    b.store(out, r1);
    b.reattach(cont);
    b.switch_to(cont);
    let n2 = b.sub(n, two);
    let k33 = b.const_int(Type::I64, 33);
    let sub_out2 = b.gep_index(out, k33);
    let r2 = b.call(FuncId(0), vec![n2, sub_out2], Type::I32).unwrap();
    b.sync(after);
    b.switch_to(after);
    let r1v = b.load(out);
    let s = b.add(r1v, r2);
    b.ret(Some(s));
    m.add_function(b.finish())
}

const N: u64 = 32;

fn pfor_mem() -> Vec<u8> {
    (0..N as i32).flat_map(|i| i.to_le_bytes()).collect()
}

fn run_pfor(cfg: &AcceleratorConfig) -> (Result<SimOutcome, SimError>, Vec<u8>) {
    let mut m = Module::new("faults");
    let f = build_pfor_inc(&mut m);
    let mut acc = Accelerator::elaborate(&m, cfg).expect("valid config");
    let init = pfor_mem();
    acc.mem_mut().write_bytes(0, &init);
    let out = acc.run(f, &[Val::Int(0), Val::Int(N)]);
    let mem = acc.mem().read_bytes(0, init.len()).to_vec();
    (out, mem)
}

fn base_cfg() -> AcceleratorConfig {
    AcceleratorConfig::builder().tiles(4).build().unwrap()
}

fn expected_mem() -> Vec<u8> {
    let (out, mem) = run_pfor(&base_cfg());
    out.expect("fault-free run succeeds");
    mem
}

#[test]
fn fault_free_runs_ignore_tolerance_settings() {
    // Arming recovery mechanisms without a fault plan must not perturb
    // timing or results (the fault-free fast path).
    let (a, mem_a) = run_pfor(&base_cfg());
    let strict = AcceleratorConfig::builder()
        .tiles(4)
        .tolerance(FaultTolerance {
            watchdog_timeout: Some(500),
            mem_timeout: 1,
            max_mem_retries: 0,
            ..FaultTolerance::default()
        })
        .build()
        .unwrap();
    let (b, mem_b) = run_pfor(&strict);
    let (a, b) = (a.unwrap(), b.unwrap());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(mem_a, mem_b);
    assert_eq!(a.stats.mem_retries, 0);
    assert_eq!(a.stats.faults_injected, 0);
    assert_eq!(a.stats.quarantined_tiles, 0);
}

#[test]
fn same_seed_same_cycles_golden_determinism() {
    let cfg = AcceleratorConfig::builder().tiles(4).faults(FaultPlan::random(3)).build().unwrap();
    let (a, mem_a) = run_pfor(&cfg);
    let (b, mem_b) = run_pfor(&cfg);
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.stats.faults_injected, b.stats.faults_injected);
            assert_eq!(a.stats.mem_retries, b.stats.mem_retries);
            assert_eq!(mem_a, mem_b);
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("nondeterministic outcome: {a:?} vs {b:?}"),
    }
}

#[test]
fn every_random_plan_is_masked_or_detected() {
    let golden = expected_mem();
    for seed in 0..12u64 {
        let plan = FaultPlan::random(seed);
        let cfg = AcceleratorConfig::builder().tiles(4).faults(plan.clone()).build().unwrap();
        let (out, mem) = run_pfor(&cfg);
        match out {
            Ok(out) => {
                assert_eq!(
                    mem, golden,
                    "seed {seed} was silently wrong: plan {plan:?}, stats {:?}",
                    out.stats
                );
            }
            Err(
                SimError::WatchdogTimeout { .. }
                | SimError::MemRetryExhausted { .. }
                | SimError::QueueParity { .. }
                | SimError::AllTilesFailed { .. }
                | SimError::Deadlock { .. }
                | SimError::Memory { .. },
            ) => {} // detected: a typed, attributable failure
            Err(other) => panic!("seed {seed}: untyped failure {other}"),
        }
    }
}

#[test]
fn quarantine_degrades_gracefully_after_a_wedge() {
    let golden = expected_mem();
    // Find the worker unit (the detached task body) so the wedge lands on
    // a 4-tile unit mid-run.
    let mut m = Module::new("faults");
    let f = build_pfor_inc(&mut m);
    let probe = Accelerator::elaborate(&m, &base_cfg()).unwrap();
    let worker =
        probe.unit_names().iter().position(|n| n.contains("task")).expect("worker unit exists");
    let baseline = {
        let (out, _) = run_pfor(&base_cfg());
        out.unwrap().cycles
    };
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(FaultPlan::new().with(Fault::TileWedge { unit: worker, tile: 2, at: baseline / 3 }))
        .build()
        .unwrap();
    let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
    let init = pfor_mem();
    acc.mem_mut().write_bytes(0, &init);
    let out = acc.run(f, &[Val::Int(0), Val::Int(N)]).expect("run survives losing one tile");
    let mem = acc.mem().read_bytes(0, init.len()).to_vec();
    assert_eq!(mem, golden, "degraded run must still be correct");
    assert!(out.stats.quarantined_tiles >= 1, "the wedged tile was fenced");
}

#[test]
fn retry_masks_a_dropped_response() {
    let golden = expected_mem();
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(FaultPlan::new().with(Fault::DropResponse { nth: 2 }))
        .build()
        .unwrap();
    let (out, mem) = run_pfor(&cfg);
    let out = out.expect("retry recovers the lost response");
    assert_eq!(mem, golden);
    assert!(out.stats.mem_retries >= 1);
}

#[test]
fn ecc_masks_a_corrupted_response() {
    let golden = expected_mem();
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(FaultPlan::new().with(Fault::CorruptResponse { nth: 1, bit: 5 }))
        .build()
        .unwrap();
    let (out, mem) = run_pfor(&cfg);
    let out = out.expect("ECC discards the flipped word and re-fetches");
    assert_eq!(mem, golden);
    assert!(out.stats.ecc_retries >= 1);
}

#[test]
fn duplicate_and_delayed_responses_are_masked() {
    let golden = expected_mem();
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(
            FaultPlan::new()
                .with(Fault::DuplicateResponse { nth: 1 })
                .with(Fault::DelayResponse { nth: 4, cycles: 50_000 }),
        )
        .build()
        .unwrap();
    let (out, mem) = run_pfor(&cfg);
    let out = out.expect("duplicates and delays are absorbed");
    assert_eq!(mem, golden);
    // The duplicate's second copy — and the delayed original overtaken by
    // its retry — are counted, never delivered.
    assert!(out.stats.spurious_responses >= 1);
}

#[test]
fn watchdog_detects_a_lost_response_when_retry_is_off() {
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(FaultPlan::new().with(Fault::DropResponse { nth: 1 }))
        .tolerance(FaultTolerance {
            mem_retry: false,
            watchdog_timeout: Some(1_000),
            ..FaultTolerance::default()
        })
        .build()
        .unwrap();
    let (out, _) = run_pfor(&cfg);
    match out {
        Err(SimError::WatchdogTimeout { unit, waiting_on: WaitCause::Memory { .. }, .. }) => {
            assert!(unit.contains("pfor_inc"), "watchdog names the unit: {unit}");
        }
        other => panic!("expected a watchdog timeout, got {other:?}"),
    }
}

#[test]
fn exhausted_retries_fail_typed() {
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(FaultPlan::new().with(Fault::DropResponse { nth: 1 }))
        .tolerance(FaultTolerance { max_mem_retries: 0, ..FaultTolerance::default() })
        .build()
        .unwrap();
    let (out, _) = run_pfor(&cfg);
    match out {
        Err(SimError::MemRetryExhausted { attempts, .. }) => assert_eq!(attempts, 0),
        other => panic!("expected retry exhaustion, got {other:?}"),
    }
}

#[test]
fn queue_parity_error_is_detected_at_dispatch() {
    let cfg = AcceleratorConfig::builder()
        .tiles(4)
        .faults(FaultPlan::new().with(Fault::QueueParity { nth_spawn: 1, bit: 7 }))
        .build()
        .unwrap();
    let (out, _) = run_pfor(&cfg);
    match out {
        Err(SimError::QueueParity { unit, .. }) => {
            assert!(unit.contains("pfor_inc"));
        }
        other => panic!("expected a queue parity error, got {other:?}"),
    }
}

#[test]
fn deadlock_diagnosis_reports_the_wait_cycle_and_oldest_task() {
    // A two-entry task queue cannot hold parallel fib's recursion: the
    // queue fills with suspended callers and progress stops.
    let mut m = Module::new("faults");
    let f = build_parallel_fib(&mut m);
    let cfg = AcceleratorConfig::builder().ntasks(2).build().unwrap();
    let mut acc = Accelerator::elaborate(&m, &cfg).unwrap();
    let err = acc.run(f, &[Val::Int(8), Val::Int(4096)]).unwrap_err();
    match err {
        SimError::Deadlock { diagnosis, .. } => {
            assert!(diagnosis.oldest.is_some(), "oldest blocked task reported");
            assert!(diagnosis.units.iter().any(|u| u.occupancy == u.capacity), "a queue is full");
            let text = diagnosis.to_string();
            assert!(text.contains("fib"), "diagnosis names the unit: {text}");
            assert!(text.contains("full"), "diagnosis flags the full queue: {text}");
        }
        other => panic!("expected a diagnosed deadlock, got {other:?}"),
    }
}
