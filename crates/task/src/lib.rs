//! # tapas-task — task extraction from the parallel IR (TAPAS Stage 1)
//!
//! Implements the reachability pass of Fig. 9 in the paper: starting from a
//! function's entry block, walk the Tapir-marked CFG and peel every
//! `detach`ed region into its own **task**. The result is an explicit task
//! graph — "the architecture blueprint for our parallel accelerator" — where
//! each task records the basic blocks it owns, its static children (detach
//! sites), and its arguments (the live variables entering the region, which
//! size the spawn port and `Args[]` RAM of the generated task unit).
//!
//! Calls are also surfaced: a serial `call` inside a task is realized in
//! hardware as a spawn of the callee's root task followed by a wait, which
//! is how TAPAS supports recursive parallelism (mergesort, fib) without a
//! program stack.

#![warn(missing_docs)]

pub mod queue;
pub mod steal;

use std::collections::{HashMap, HashSet};
use tapas_ir::analysis::Cfg;
use tapas_ir::{BlockId, FuncId, Function, Module, Op, Terminator, Type, ValueId};

/// Index of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A static task: a single-entry region of the function delimited by
/// `detach`/`reattach` (or the whole function body, for the root task).
#[derive(Debug, Clone)]
pub struct Task {
    /// This task's id within its graph.
    pub id: TaskId,
    /// Display name, derived from the function and entry block.
    pub name: String,
    /// Entry block of the region.
    pub entry: BlockId,
    /// Blocks owned by this task, in discovery order. Nested child regions
    /// are *not* included — they belong to the child tasks.
    pub blocks: Vec<BlockId>,
    /// Parent task (`None` for the root).
    pub parent: Option<TaskId>,
    /// Static children in spawn-site order.
    pub children: Vec<TaskId>,
    /// Detach sites: (block ending in `detach`, child task spawned).
    pub detach_sites: Vec<(BlockId, TaskId)>,
    /// Arguments: values live into `entry`, in ascending `ValueId` order.
    /// For the root task these are the function parameters.
    pub args: Vec<ValueId>,
    /// Blocks ending the task (`reattach` for spawned tasks, `ret` for the
    /// root).
    pub exits: Vec<BlockId>,
    /// Functions invoked by serial `call`s inside this task.
    pub calls: Vec<FuncId>,
    /// Whether this task's own blocks contain a CFG cycle (an internal
    /// loop). Loopy tasks execute one instance per tile at a time; loop-free
    /// tasks can be pipelined (Fig. 7).
    pub has_loop: bool,
}

/// The task graph of one function.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// Function this graph was extracted from.
    pub func: FuncId,
    /// All tasks; index 0 is the root.
    pub tasks: Vec<Task>,
    /// Owner task of every block.
    pub block_owner: Vec<TaskId>,
}

impl TaskGraph {
    /// The root task id.
    pub fn root(&self) -> TaskId {
        TaskId(0)
    }

    /// Access a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Which task owns `block`.
    pub fn owner(&self, block: BlockId) -> TaskId {
        self.block_owner[block.0 as usize]
    }

    /// Iterate over task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Nesting depth of a task (root = 0).
    pub fn depth(&self, id: TaskId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.task(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Per-task instruction and memory-op counts over the *static* region
    /// (the numbers reported in Table II of the paper).
    pub fn task_profile(&self, f: &Function, id: TaskId) -> TaskProfile {
        let t = self.task(id);
        let mut insts = 0usize;
        let mut mem = 0usize;
        for &b in &t.blocks {
            for inst in &f.block(b).insts {
                insts += 1;
                if inst.op.is_mem() {
                    mem += 1;
                }
            }
        }
        TaskProfile { insts, mem_ops: mem, args: t.args.len() }
    }

    /// Graphviz rendering of the task graph (spawn edges solid, call edges
    /// dashed).
    pub fn to_dot(&self, m: &Module) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph tasks {\n");
        for t in &self.tasks {
            let _ = writeln!(s, "  {} [label=\"{}\"];", t.id, t.name);
            for c in &t.children {
                let _ = writeln!(s, "  {} -> {};", t.id, c);
            }
            for f in &t.calls {
                let _ = writeln!(s, "  {} -> \"@{}\" [style=dashed];", t.id, m.function(*f).name);
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Static per-task cost summary (Table II columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskProfile {
    /// Static instruction count of the task region.
    pub insts: usize,
    /// Static load/store count.
    pub mem_ops: usize,
    /// Number of task arguments (spawn payload width).
    pub args: usize,
}

/// Errors produced during task extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The function failed IR verification first.
    Malformed(String),
    /// A value defined inside a detached region is used outside it, which
    /// has no hardware realization (results must flow through memory).
    ValueEscapes {
        /// The defining task.
        task: TaskId,
        /// The escaping value.
        value: ValueId,
    },
    /// A task argument has a type that cannot cross a spawn port.
    BadArgType {
        /// The task whose argument is unsupported.
        task: TaskId,
        /// The offending value.
        value: ValueId,
        /// Its type.
        ty: Type,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Malformed(e) => write!(f, "malformed IR: {e}"),
            TaskError::ValueEscapes { task, value } => {
                write!(f, "value {value} defined in {task} escapes its region")
            }
            TaskError::BadArgType { task, value, ty } => {
                write!(f, "argument {value} of {task} has unsupported type {ty}")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Extract the task graph of `func` (the Fig. 9 pass).
///
/// # Errors
///
/// Returns [`TaskError`] if the Tapir structure is malformed, an SSA value
/// escapes a detached region, or a task argument is not a first-class
/// scalar.
pub fn extract_tasks(m: &Module, func: FuncId) -> Result<TaskGraph, TaskError> {
    let f = m.function(func);
    if let Err(errs) = tapas_ir::verify_function(f, m) {
        return Err(TaskError::Malformed(errs.first().map(|e| e.to_string()).unwrap_or_default()));
    }
    let cfg = Cfg::compute(f);

    let mut tasks: Vec<Task> = Vec::new();
    let mut block_owner: Vec<Option<TaskId>> = vec![None; f.num_blocks()];

    tasks.push(Task {
        id: TaskId(0),
        name: format!("{}::root", f.name),
        entry: f.entry(),
        blocks: Vec::new(),
        parent: None,
        children: Vec::new(),
        detach_sites: Vec::new(),
        args: f.param_values(),
        exits: Vec::new(),
        calls: Vec::new(),
        has_loop: false,
    });

    // Iterative region walk: (task, start block, reattach continuation).
    let mut work: Vec<(TaskId, BlockId, Option<BlockId>)> = vec![(TaskId(0), f.entry(), None)];
    while let Some((tid, start, stop_cont)) = work.pop() {
        let mut stack = vec![start];
        while let Some(b) = stack.pop() {
            if block_owner[b.0 as usize].is_some() {
                continue;
            }
            block_owner[b.0 as usize] = Some(tid);
            tasks[tid.0 as usize].blocks.push(b);
            for inst in &f.block(b).insts {
                if let Op::Call { callee, .. } = &inst.op {
                    if !tasks[tid.0 as usize].calls.contains(callee) {
                        tasks[tid.0 as usize].calls.push(*callee);
                    }
                }
            }
            match &f.block(b).term {
                Terminator::Detach { task, cont } => {
                    let child_id = TaskId(tasks.len() as u32);
                    tasks.push(Task {
                        id: child_id,
                        name: format!("{}::task{}", f.name, child_id.0),
                        entry: *task,
                        blocks: Vec::new(),
                        parent: Some(tid),
                        children: Vec::new(),
                        detach_sites: Vec::new(),
                        args: Vec::new(),
                        exits: Vec::new(),
                        calls: Vec::new(),
                        has_loop: false,
                    });
                    tasks[tid.0 as usize].children.push(child_id);
                    tasks[tid.0 as usize].detach_sites.push((b, child_id));
                    work.push((child_id, *task, Some(*cont)));
                    stack.push(*cont);
                }
                Terminator::Reattach { cont } => {
                    debug_assert_eq!(Some(*cont), stop_cont);
                    tasks[tid.0 as usize].exits.push(b);
                }
                Terminator::Ret { .. } => {
                    tasks[tid.0 as usize].exits.push(b);
                }
                t => {
                    for s in t.successors() {
                        stack.push(s);
                    }
                }
            }
        }
    }

    let block_owner: Vec<TaskId> = block_owner
        .into_iter()
        .map(|o| o.unwrap_or(TaskId(0))) // unreachable blocks: park on root
        .collect();

    // Task arguments: values used inside the region but defined outside it
    // (parameters or instructions of an ancestor task). This is the live
    // set that crosses the spawn port — constants are materialized in the
    // TXU and excluded. (The paper's "live variable analysis"; for these
    // single-entry regions use-minus-def is exactly the live-in set.)
    for (tid, task) in tasks.iter_mut().enumerate().skip(1) {
        let mut used: HashSet<ValueId> = HashSet::new();
        for &b in &task.blocks {
            for inst in &f.block(b).insts {
                used.extend(inst.op.operands());
            }
            used.extend(f.block(b).term.operands());
        }
        let mut args: Vec<ValueId> = used
            .into_iter()
            .filter(|v| match f.value(*v).def {
                tapas_ir::ValueDef::Param(_) => true,
                tapas_ir::ValueDef::Inst(db, _) => block_owner[db.0 as usize] != TaskId(tid as u32),
                tapas_ir::ValueDef::Const(_) => false,
            })
            .collect();
        args.sort();
        task.args = args;
    }
    // Thread args through intermediate tasks: if a child needs a value that
    // is not defined in (or an argument of) its parent, the parent must
    // receive it at its own spawn port to forward it. Children always have
    // larger ids than their parents, so one high-to-low pass suffices.
    for tid in (1..tasks.len()).rev() {
        // invariant: task 0 is the only root; every task discovered during
        // extraction is recorded with the parent that detached it.
        let parent = tasks[tid].parent.expect("non-root task has a parent");
        if parent.0 == 0 {
            continue; // root holds the function parameters already
        }
        let child_args = tasks[tid].args.clone();
        for v in child_args {
            let defined_in_parent = match f.value(v).def {
                tapas_ir::ValueDef::Inst(db, _) => block_owner[db.0 as usize] == parent,
                _ => false,
            };
            let p = &mut tasks[parent.0 as usize];
            if !defined_in_parent && !p.args.contains(&v) {
                p.args.push(v);
                p.args.sort();
            }
        }
    }

    // Escape check: every use of a value defined in task T must be in T or
    // in a descendant of T (parent-to-child flows become task arguments;
    // child-to-parent flows have no hardware realization).
    let def_owner_of = |v: ValueId| -> Option<TaskId> {
        match f.value(v).def {
            tapas_ir::ValueDef::Inst(db, _) => Some(block_owner[db.0 as usize]),
            _ => None,
        }
    };
    let check_uses = |use_block: BlockId, uses: &[ValueId]| -> Result<(), TaskError> {
        let owner = block_owner[use_block.0 as usize];
        for &v in uses {
            if let Some(d) = def_owner_of(v) {
                if d != owner && !is_ancestor(&tasks, d, owner) {
                    return Err(TaskError::ValueEscapes { task: d, value: v });
                }
            }
        }
        Ok(())
    };
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            if let Op::Phi { incomings } = &inst.op {
                // Phi incomings are attributed to their predecessor block.
                for (pb, v) in incomings {
                    check_uses(*pb, &[*v])?;
                }
            } else {
                check_uses(b, &inst.op.operands())?;
            }
        }
        check_uses(b, &f.block(b).term.operands())?;
    }

    // Argument type check: spawn ports carry first-class scalars only.
    for t in &tasks {
        for &a in &t.args {
            let ty = f.value_ty(a);
            if !ty.is_first_class() {
                return Err(TaskError::BadArgType { task: t.id, value: a, ty: ty.clone() });
            }
        }
    }

    // Loop detection per task (cycle within owned blocks).
    let mut graph = TaskGraph { func, tasks, block_owner };
    for tid in 0..graph.tasks.len() {
        let blocks = graph.tasks[tid].blocks.clone();
        graph.tasks[tid].has_loop = has_internal_cycle(&cfg, &blocks);
    }
    Ok(graph)
}

fn is_ancestor(tasks: &[Task], anc: TaskId, mut of: TaskId) -> bool {
    loop {
        if anc == of {
            return true;
        }
        match tasks[of.0 as usize].parent {
            Some(p) => of = p,
            None => return false,
        }
    }
}

fn has_internal_cycle(cfg: &Cfg, blocks: &[BlockId]) -> bool {
    let set: HashSet<BlockId> = blocks.iter().copied().collect();
    let mut color: HashMap<BlockId, u8> = HashMap::new(); // 1 = open, 2 = done
    for &start in blocks {
        if color.contains_key(&start) {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        while let Some((b, i)) = stack.pop() {
            let succs: Vec<BlockId> =
                cfg.succs(b).iter().copied().filter(|s| set.contains(s)).collect();
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                match color.get(&s) {
                    Some(1) => return true,
                    Some(_) => {}
                    None => {
                        color.insert(s, 1);
                        stack.push((s, 0));
                    }
                }
            } else {
                color.insert(b, 2);
            }
        }
    }
    false
}

/// Extract task graphs for every function of a module.
///
/// # Errors
///
/// Fails on the first function whose extraction fails.
pub fn extract_module(m: &Module) -> Result<Vec<TaskGraph>, TaskError> {
    m.functions().map(|(id, _)| extract_tasks(m, id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

    /// Parallel-for skeleton mirroring Fig. 2 of the paper: a root loop
    /// detaches a body task per iteration.
    fn build_parallel_for() -> (Module, FuncId) {
        let mut b = FunctionBuilder::new("pfor", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let header = b.create_block("header");
        let spawn = b.create_block("spawn");
        let task = b.create_block("task");
        let latch = b.create_block("latch");
        let exit = b.create_block("exit");
        let done = b.create_block("done");
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(header);

        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c, spawn, exit);

        b.switch_to(spawn);
        b.detach(task, latch);

        b.switch_to(task);
        let p = b.gep_index(a, i);
        let v = b.load(p);
        let one32 = b.const_int(Type::I32, 1);
        let v2 = b.add(v, one32);
        b.store(p, v2);
        b.reattach(latch);

        b.switch_to(latch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, latch, i2);
        b.br(header);

        b.switch_to(exit);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);

        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        (m, f)
    }

    #[test]
    fn parallel_for_yields_two_tasks() {
        let (m, f) = build_parallel_for();
        let tg = extract_tasks(&m, f).unwrap();
        assert_eq!(tg.num_tasks(), 2);
        let root = tg.task(tg.root());
        assert_eq!(root.children.len(), 1);
        let child = tg.task(root.children[0]);
        assert_eq!(child.parent, Some(tg.root()));
        // Child args: the array pointer and the loop index (not constants).
        assert_eq!(child.args.len(), 2);
        assert!(tg.task(tg.root()).has_loop);
        assert!(!child.has_loop);
    }

    #[test]
    fn task_profile_counts_region_only() {
        let (m, f) = build_parallel_for();
        let tg = extract_tasks(&m, f).unwrap();
        let func = m.function(f);
        let child = tg.task(tg.task(tg.root()).children[0]);
        let prof = tg.task_profile(func, child.id);
        // gep, load, add, store
        assert_eq!(prof.insts, 4);
        assert_eq!(prof.mem_ops, 2);
        let root_prof = tg.task_profile(func, tg.root());
        assert!(root_prof.insts >= 2);
    }

    /// Nested parallel loops as in Fig. 3: outer cilk_for spawning inner
    /// cilk_for spawning the body — three tasks in a chain.
    fn build_nested(m: &mut Module) -> FuncId {
        let ptr = Type::ptr(Type::I32);
        let mut b = FunctionBuilder::new(
            "nested",
            vec![ptr.clone(), ptr.clone(), ptr, Type::I64],
            Type::Void,
        );
        let oh = b.create_block("outer_header");
        let osp = b.create_block("outer_spawn");
        let otask = b.create_block("outer_task");
        let olatch = b.create_block("outer_latch");
        let oexit = b.create_block("outer_exit");
        let odone = b.create_block("outer_done");
        let ih = b.create_block("inner_header");
        let isp = b.create_block("inner_spawn");
        let itask = b.create_block("inner_task");
        let ilatch = b.create_block("inner_latch");
        let iexit = b.create_block("inner_exit");
        let idone = b.create_block("inner_done");

        let (aa, bb, cc, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let zero = b.const_int(Type::I64, 0);
        let one = b.const_int(Type::I64, 1);
        let entry = b.current_block();
        b.br(oh);

        b.switch_to(oh);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c0 = b.icmp(CmpPred::Slt, i, n);
        b.cond_br(c0, osp, oexit);

        b.switch_to(osp);
        b.detach(otask, olatch);

        b.switch_to(otask);
        b.br(ih);

        b.switch_to(ih);
        let j = b.phi(Type::I64, vec![(otask, zero)]);
        let c1 = b.icmp(CmpPred::Slt, j, n);
        b.cond_br(c1, isp, iexit);

        b.switch_to(isp);
        b.detach(itask, ilatch);

        b.switch_to(itask);
        let row = b.mul(i, n);
        let idx = b.add(row, j);
        let pa = b.gep_index(aa, idx);
        let pb = b.gep_index(bb, idx);
        let pc = b.gep_index(cc, idx);
        let va = b.load(pa);
        let vb = b.load(pb);
        let s = b.add(va, vb);
        b.store(pc, s);
        b.reattach(ilatch);

        b.switch_to(ilatch);
        let j2 = b.add(j, one);
        b.add_phi_incoming(j, ilatch, j2);
        b.br(ih);

        b.switch_to(iexit);
        b.sync(idone);
        b.switch_to(idone);
        b.reattach(olatch);

        b.switch_to(olatch);
        let i2 = b.add(i, one);
        b.add_phi_incoming(i, olatch, i2);
        b.br(oh);

        b.switch_to(oexit);
        b.sync(odone);
        b.switch_to(odone);
        b.ret(None);

        m.add_function(b.finish())
    }

    #[test]
    fn nested_loops_yield_three_task_chain() {
        let mut m = Module::new("m");
        let f = build_nested(&mut m);
        let tg = extract_tasks(&m, f).unwrap();
        assert_eq!(tg.num_tasks(), 3, "T0 -> T1 -> T2 as in Fig. 3");
        let t0 = tg.task(TaskId(0));
        let t1 = tg.task(TaskId(1));
        let t2 = tg.task(TaskId(2));
        assert_eq!(t0.children, vec![TaskId(1)]);
        assert_eq!(t1.children, vec![TaskId(2)]);
        assert!(t2.children.is_empty());
        assert_eq!(tg.depth(TaskId(2)), 2);
        assert!(t1.args.len() >= 2);
        assert!(t2.args.len() >= 5);
        assert!(t1.has_loop);
        assert!(!t2.has_loop);
    }

    #[test]
    fn escaping_value_rejected() {
        // Child defines a value used by the parent after the sync — illegal.
        let mut b = FunctionBuilder::new("esc", vec![], Type::I32);
        let task = b.create_block("task");
        let cont = b.create_block("cont");
        let done = b.create_block("done");
        b.detach(task, cont);
        b.switch_to(task);
        let one = b.const_int(Type::I32, 1);
        let v = b.add(one, one);
        b.reattach(cont);
        b.switch_to(cont);
        b.sync(done);
        b.switch_to(done);
        b.ret(Some(v));
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        let err = extract_tasks(&m, f).unwrap_err();
        // The SSA dominance check catches this at verification (the detach
        // edge bypasses the region, so the def cannot dominate the use);
        // the dedicated escape check remains as defense in depth.
        match err {
            TaskError::Malformed(msg) => assert!(msg.contains("not dominated"), "{msg}"),
            TaskError::ValueEscapes { .. } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn calls_recorded_for_recursion() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("rec", vec![Type::I32], Type::Void);
        let spawn = b.create_block("spawn");
        let task = b.create_block("task");
        let cont = b.create_block("cont");
        let done = b.create_block("done");
        let leaf = b.create_block("leaf");
        let n = b.param(0);
        let zero = b.const_int(Type::I32, 0);
        let c = b.icmp(CmpPred::Sgt, n, zero);
        b.cond_br(c, spawn, leaf);
        b.switch_to(spawn);
        b.detach(task, cont);
        b.switch_to(task);
        let one = b.const_int(Type::I32, 1);
        let n1 = b.sub(n, one);
        b.call(FuncId(0), vec![n1], Type::Void);
        b.reattach(cont);
        b.switch_to(cont);
        b.sync(done);
        b.switch_to(done);
        b.ret(None);
        b.switch_to(leaf);
        b.ret(None);
        let f = m.add_function(b.finish());
        let tg = extract_tasks(&m, f).unwrap();
        assert_eq!(tg.num_tasks(), 2);
        assert_eq!(tg.task(TaskId(1)).calls, vec![f]);
        // Root has two exits (both rets); child exits via reattach.
        assert_eq!(tg.task(TaskId(0)).exits.len(), 2);
        assert_eq!(tg.task(TaskId(1)).exits.len(), 1);
    }

    #[test]
    fn dot_output_mentions_every_task() {
        let (m, f) = build_parallel_for();
        let tg = extract_tasks(&m, f).unwrap();
        let dot = tg.to_dot(&m);
        assert!(dot.contains("T0"));
        assert!(dot.contains("T1"));
        assert!(dot.contains("T0 -> T1"));
    }

    #[test]
    fn extract_module_covers_all_functions() {
        let (mut m, _) = build_parallel_for();
        build_nested(&mut m);
        let graphs = extract_module(&m).unwrap();
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[0].num_tasks(), 2);
        assert_eq!(graphs[1].num_tasks(), 3);
    }

    #[test]
    fn block_ownership_is_total_and_consistent() {
        let mut m = Module::new("m");
        let f = build_nested(&mut m);
        let tg = extract_tasks(&m, f).unwrap();
        let func = m.function(f);
        // Every reachable block is owned by the task that lists it.
        for t in tg.task_ids() {
            for &b in &tg.task(t).blocks {
                assert_eq!(tg.owner(b), t);
            }
        }
        let listed: usize = tg.task_ids().map(|t| tg.task(t).blocks.len()).sum();
        assert_eq!(listed, func.num_blocks());
    }
}
