//! Task-queue occupancy accounting.
//!
//! The paper's task unit holds `Ntasks` queue entries, each in one of a
//! small set of states (§IV-B): waiting to be claimed by a tile (READY),
//! executing (EXE), parked at a `sync` until its children complete (SYNC),
//! or mid-handshake on the spawn port (SPAWNING). This module provides the
//! bookkeeping the profiler uses to report queue pressure per task unit:
//! a per-cycle occupancy observation stream with mean and peak statistics.

/// State of one task-queue entry, matching the paper's queue-entry FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueState {
    /// Spawned and waiting for a free tile to claim it.
    Ready,
    /// Claimed by a tile and executing.
    Exe,
    /// Parked at a `sync`, waiting for outstanding children.
    Sync,
    /// Mid-handshake on the spawn port (entry allocated, args streaming in).
    Spawning,
}

impl QueueState {
    /// Short display label used in profiler reports.
    pub fn label(self) -> &'static str {
        match self {
            QueueState::Ready => "READY",
            QueueState::Exe => "EXE",
            QueueState::Sync => "SYNC",
            QueueState::Spawning => "SPAWN",
        }
    }
}

/// Running occupancy statistics for one task queue.
///
/// Call [`QueueOccupancy::observe`] once per simulated cycle with the number
/// of live entries; mean and peak are then available at any point without
/// storing the full time series.
#[derive(Debug, Clone, Default)]
pub struct QueueOccupancy {
    samples: u64,
    total: u64,
    peak: u32,
    full_cycles: u64,
    capacity: u32,
}

impl QueueOccupancy {
    /// Create an accumulator for a queue with `capacity` entries.
    pub fn new(capacity: u32) -> Self {
        QueueOccupancy { capacity, ..Default::default() }
    }

    /// Record the queue's live-entry count for one cycle.
    pub fn observe(&mut self, occupied: u32) {
        self.observe_spawns(occupied, false);
    }

    /// Record one cycle, additionally noting whether a spawn into this
    /// queue was actually refused. A queue counts as full either when its
    /// occupancy hits capacity or when it turned a producer away this
    /// cycle — overflow entries spilled to memory can make the latter
    /// happen below nominal capacity.
    pub fn observe_spawns(&mut self, occupied: u32, spawn_refused: bool) {
        self.samples += 1;
        self.total += u64::from(occupied);
        self.peak = self.peak.max(occupied);
        if spawn_refused || (self.capacity > 0 && occupied >= self.capacity) {
            self.full_cycles += 1;
        }
    }

    /// Record `cycles` consecutive idle cycles at a constant occupancy in
    /// one bulk observation — exactly equivalent to calling
    /// [`QueueOccupancy::observe`] `cycles` times. The event-driven engine
    /// uses this to account for the idle windows it skips over without
    /// touching each cycle individually.
    pub fn observe_idle(&mut self, occupied: u32, cycles: u64) {
        self.samples += cycles;
        self.total += u64::from(occupied) * cycles;
        self.peak = self.peak.max(occupied);
        if self.capacity > 0 && occupied >= self.capacity {
            self.full_cycles += cycles;
        }
    }

    /// Number of cycles observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean live entries per observed cycle (0.0 before any observation).
    pub fn mean_occupancy(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total as f64 / self.samples as f64
        }
    }

    /// Highest occupancy seen in any single cycle.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Cycles the queue sat completely full — spawns into it would
    /// backpressure the parent during these cycles.
    pub fn full_cycles(&self) -> u64 {
        self.full_cycles
    }

    /// Queue capacity this accumulator was built with.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Capture the accumulator for the engine snapshot.
    pub fn save_state(&self) -> QueueOccupancyState {
        QueueOccupancyState {
            samples: self.samples,
            total: self.total,
            peak: self.peak,
            full_cycles: self.full_cycles,
            capacity: self.capacity,
        }
    }

    /// Restore state captured by [`QueueOccupancy::save_state`].
    pub fn restore_state(&mut self, st: &QueueOccupancyState) {
        self.samples = st.samples;
        self.total = st.total;
        self.peak = st.peak;
        self.full_cycles = st.full_cycles;
        self.capacity = st.capacity;
    }
}

/// Plain-data image of a [`QueueOccupancy`] accumulator (snapshot payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueOccupancyState {
    /// Cycles observed.
    pub samples: u64,
    /// Sum of observed occupancies.
    pub total: u64,
    /// Highest single-cycle occupancy.
    pub peak: u32,
    /// Cycles the queue sat full (or refused a spawn).
    pub full_cycles: u64,
    /// Configured capacity.
    pub capacity: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_well_defined() {
        let q = QueueOccupancy::new(8);
        assert_eq!(q.samples(), 0);
        assert_eq!(q.mean_occupancy(), 0.0);
        assert_eq!(q.peak(), 0);
        assert_eq!(q.full_cycles(), 0);
    }

    #[test]
    fn mean_peak_and_full_tracking() {
        let mut q = QueueOccupancy::new(4);
        for occ in [0, 2, 4, 4, 2] {
            q.observe(occ);
        }
        assert_eq!(q.samples(), 5);
        assert!((q.mean_occupancy() - 2.4).abs() < 1e-9);
        assert_eq!(q.peak(), 4);
        assert_eq!(q.full_cycles(), 2);
    }

    #[test]
    fn refused_spawns_count_as_full_even_below_capacity() {
        let mut q = QueueOccupancy::new(4);
        q.observe_spawns(1, true);
        q.observe_spawns(1, false);
        q.observe_spawns(4, false);
        // Refusal and capacity-full each count once; a refusal at full
        // occupancy would not double count.
        assert_eq!(q.full_cycles(), 2);
        q.observe_spawns(4, true);
        assert_eq!(q.full_cycles(), 3);
    }

    #[test]
    fn bulk_idle_observation_matches_per_cycle_observation() {
        let mut per_cycle = QueueOccupancy::new(4);
        let mut bulk = QueueOccupancy::new(4);
        for _ in 0..7 {
            per_cycle.observe(3);
        }
        bulk.observe_idle(3, 7);
        assert_eq!(per_cycle.samples(), bulk.samples());
        assert_eq!(per_cycle.mean_occupancy(), bulk.mean_occupancy());
        assert_eq!(per_cycle.peak(), bulk.peak());
        assert_eq!(per_cycle.full_cycles(), bulk.full_cycles());
        // At capacity the whole window counts as full.
        per_cycle.observe(4);
        per_cycle.observe(4);
        bulk.observe_idle(4, 2);
        assert_eq!(per_cycle.full_cycles(), bulk.full_cycles());
    }

    #[test]
    fn state_labels() {
        assert_eq!(QueueState::Ready.label(), "READY");
        assert_eq!(QueueState::Sync.label(), "SYNC");
    }
}
