//! The task queue's **steal port**: victim selection and accounting for
//! cross-unit work stealing.
//!
//! The paper fixes one task queue per static task, which leaves tiles idle
//! behind one hot unit on recursive workloads. The steal port is the extra
//! read port a hardened task controller exposes so that an idle tile of
//! *another* unit can claim a READY entry. This module owns the policy
//! half — a deterministic round-robin victim cursor plus steal counters —
//! while the simulator owns the datapath (actually moving the entry).
//!
//! Determinism rules, matching the documented pop/steal priority:
//!
//! * the **owner wins**: a unit's own tiles claim READY entries first, and
//!   the steal port only serves entries the owner left unclaimed in the
//!   same cycle (an entry can never dispatch twice);
//! * victims are probed in a fixed round-robin order starting after the
//!   last successful victim, so identical runs produce identical steal
//!   traces.

/// Round-robin victim selector and steal counters for one thief unit.
#[derive(Debug, Clone, Default)]
pub struct StealPort {
    /// Unit index after which the next victim probe starts.
    cursor: usize,
    /// Entries successfully stolen through this port.
    pub steals: u64,
    /// Probe rounds that found no eligible entry in any victim.
    pub failures: u64,
}

impl StealPort {
    /// Create a steal port for a design with any number of units.
    pub fn new() -> Self {
        StealPort::default()
    }

    /// The victim probe order for a thief at unit `me` among `units`
    /// units: every *other* unit exactly once, round-robin starting after
    /// the most recent successful victim.
    pub fn probe_order(&self, me: usize, units: usize) -> Vec<usize> {
        // `units` consecutive offsets cover every unit exactly once; the
        // thief itself is then dropped, leaving all `units - 1` victims.
        (1..=units).map(|k| (self.cursor + k) % units).filter(|&v| v != me).collect()
    }

    /// Record a successful steal from `victim`; the next probe round
    /// starts after it.
    pub fn record_steal(&mut self, victim: usize) {
        self.cursor = victim;
        self.steals += 1;
    }

    /// Record a probe round that found nothing to steal.
    pub fn record_failure(&mut self) {
        self.failures += 1;
    }

    /// Capture the port's state (cursor + counters) for the engine
    /// snapshot — the cursor is dynamic state: restoring it is what keeps
    /// post-resume steal traces identical to an uninterrupted run.
    pub fn save_state(&self) -> StealPortState {
        StealPortState { cursor: self.cursor, steals: self.steals, failures: self.failures }
    }

    /// Restore state captured by [`StealPort::save_state`].
    pub fn restore_state(&mut self, st: &StealPortState) {
        self.cursor = st.cursor;
        self.steals = st.steals;
        self.failures = st.failures;
    }
}

/// Plain-data image of a [`StealPort`] (snapshot payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealPortState {
    /// Round-robin victim cursor.
    pub cursor: usize,
    /// Successful steals.
    pub steals: u64,
    /// Empty probe rounds.
    pub failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_order_visits_every_other_unit_once() {
        let p = StealPort::new();
        assert_eq!(p.probe_order(0, 4), vec![1, 2, 3]);
        assert_eq!(p.probe_order(2, 4), vec![1, 3, 0]);
        assert_eq!(p.probe_order(0, 1), Vec::<usize>::new());
    }

    #[test]
    fn cursor_rotates_after_a_steal() {
        let mut p = StealPort::new();
        p.record_steal(2);
        assert_eq!(p.probe_order(0, 4), vec![3, 1, 2], "starts after the last victim");
        assert_eq!(p.steals, 1);
    }

    #[test]
    fn failures_accumulate_without_moving_the_cursor() {
        let mut p = StealPort::new();
        let before = p.probe_order(1, 3);
        p.record_failure();
        assert_eq!(p.probe_order(1, 3), before);
        assert_eq!(p.failures, 1);
    }

    #[test]
    fn identical_histories_give_identical_orders() {
        let mut a = StealPort::new();
        let mut b = StealPort::new();
        for v in [1usize, 3, 2] {
            a.record_steal(v);
            b.record_steal(v);
        }
        assert_eq!(a.probe_order(0, 5), b.probe_order(0, 5));
    }
}
