//! Dedup — the dynamic task pipeline of Fig. 1 (PARSEC's dedup, adapted
//! from its Cilk-P on-the-fly pipelining).
//!
//! The pipeline has four logical stages, realized with the fork-join
//! primitives Tapir offers (the paper notes Tapir does not capture
//! data-driven inter-stage queues, so pipelines synchronize through the
//! shared cache — §VI):
//!
//! * **S0/fingerprint** — a `cilk_for` fingerprints every chunk in
//!   parallel (the heavy, embarrassingly parallel front of the pipe),
//!   parking each chunk's hash in shared memory;
//! * **S1/probe** — an *ordered* serial loop with a *dynamic exit* (a
//!   sentinel chunk stops the stream at run time) probes and installs the
//!   hash table in chunk order, so duplicate detection is deterministic;
//! * **S2/compress** — *conditional, embarrassingly parallel*: chunks
//!   that are not duplicates are compressed by a spawned task; duplicates
//!   bypass the stage entirely — the pattern static pipelines and FIFO
//!   queues cannot express;
//! * **S3/write** — emits the output record; spawned by S2 after
//!   compression, or directly by S1 when S2 was bypassed, matching the
//!   paper's "stage-1 passes data directly to stage-3" observation.
//!
//! Output record per chunk: `[is_dup: i32, payload: i32]` where payload is
//! the compressed checksum for fresh chunks and the matched chunk id for
//! duplicates.

use crate::loops::{cilk_for, if_then_else};
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

/// Number of hash-table buckets (must be a power of two).
pub const TABLE_SLOTS: u64 = 64;

/// Build dedup over `nchunks` chunks of `chunk_len` bytes each. Chunks are
/// generated with deliberate repeats (every third chunk repeats an earlier
/// one). Memory layout:
///
/// * chunk data: `nchunks · chunk_len` bytes at 0
/// * fingerprints: `nchunks` × i64
/// * hash table: `TABLE_SLOTS` × `[hash: i64, id: i64]`
/// * output: `nchunks` × `[is_dup: i32, payload: i32]` (validated region)
pub fn build(nchunks: u64, chunk_len: u64) -> BuiltWorkload {
    let data_len = nchunks * chunk_len;
    let fp_off = data_len.next_multiple_of(8);
    let table_off = fp_off + nchunks * 8;
    let table_len = TABLE_SLOTS * 16;
    let out_off = table_off + table_len;
    let out_len = nchunks * 8;

    let byte_ptr = Type::ptr(Type::I8);
    let mut b = FunctionBuilder::new(
        "dedup",
        vec![
            byte_ptr,             // chunk data
            Type::ptr(Type::I64), // fingerprint array
            Type::ptr(Type::I64), // hash table (8-byte granules)
            Type::ptr(Type::I32), // output records
            Type::I64,            // nchunks
            Type::I64,            // chunk_len
        ],
        Type::Void,
    );
    let (data, fps, table, outp, nchunks_v, clen) =
        (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4), b.param(5));
    let zero = b.const_int(Type::I64, 0);
    let one = b.const_int(Type::I64, 1);
    let two = b.const_int(Type::I64, 2);

    // ---- S0: parallel fingerprint of every chunk -----------------------
    cilk_for(&mut b, zero, nchunks_v, |b, cid| {
        let chunk_off = b.mul(cid, clen);
        let wh = b.create_block("fp_header");
        let body = b.create_block("fp_body");
        let exit = b.create_block("fp_exit");
        let pre = b.current_block();
        b.br(wh);
        b.switch_to(wh);
        let k = b.phi(Type::I64, vec![(pre, zero)]);
        let fp = b.phi(Type::I64, vec![(pre, zero)]);
        let c = b.icmp(CmpPred::Slt, k, clen);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let off = b.add(chunk_off, k);
        let pb = b.gep_index(data, off);
        let byte = b.load(pb);
        let byte_w = b.zext(byte, Type::I64);
        let c131 = b.const_int(Type::I64, 131);
        let fp_m = b.mul(fp, c131);
        let fp2 = b.add(fp_m, byte_w);
        let k2 = b.add(k, one);
        b.add_phi_incoming(k, body, k2);
        b.add_phi_incoming(fp, body, fp2);
        b.br(wh);
        b.switch_to(exit);
        let pfp = b.gep_index(fps, cid);
        b.store(pfp, fp);
    });

    // ---- S1: ordered probe loop with a dynamic exit ---------------------
    let wh = b.create_block("s1_header");
    let body = b.create_block("s1_body");
    let probe = b.create_block("s1_probe");
    let exit = b.create_block("s1_exit");
    let done = b.create_block("s1_done");
    let pre = b.current_block();
    b.br(wh);

    b.switch_to(wh);
    let cid = b.phi(Type::I64, vec![(pre, zero)]);
    let in_range = b.icmp(CmpPred::Slt, cid, nchunks_v);
    b.cond_br(in_range, body, exit);

    b.switch_to(body);
    // dynamic exit: a chunk starting with the 0xFF sentinel stops the pipe
    let chunk_off = b.mul(cid, clen);
    let pfirst = b.gep_index(data, chunk_off);
    let first = b.load(pfirst);
    let first_w = b.zext(first, Type::I64);
    let sentinel = b.const_int(Type::I64, 0xFF);
    let is_end = b.icmp(CmpPred::Eq, first_w, sentinel);
    b.cond_br(is_end, exit, probe);

    b.switch_to(probe);
    let pfp = b.gep_index(fps, cid);
    let fp = b.load(pfp);
    let mask = b.const_int(Type::I64, TABLE_SLOTS as i64 - 1);
    let slot = b.and(fp, mask);
    let granule = b.mul(slot, two); // record = [hash, id], 2 granules
    let ph = b.gep_index(table, granule);
    let stored = b.load(ph);
    let is_dup = b.icmp(CmpPred::Eq, stored, fp);
    let out_base = b.mul(cid, two);
    let pflag = b.gep_index(outp, out_base);
    let payload_idx = b.add(out_base, one);
    let ppay = b.gep_index(outp, payload_idx);
    if_then_else(
        &mut b,
        is_dup,
        |b| {
            // duplicate: S2 bypassed, S3 spawned directly from S1
            let gid = b.add(granule, one);
            let pid = b.gep_index(table, gid);
            let packed = b.load(pid);
            let matched32 = b.trunc(packed, Type::I32);
            let t3 = b.create_block("s3_dup");
            let c3 = b.create_block("s3_dup_cont");
            b.detach(t3, c3);
            b.switch_to(t3);
            let one32 = b.const_int(Type::I32, 1);
            b.store(pflag, one32);
            b.store(ppay, matched32);
            b.reattach(c3);
            b.switch_to(c3);
        },
        |b| {
            // fresh: install (ordered), then spawn S2 which spawns S3
            b.store(ph, fp);
            let gid = b.add(granule, one);
            let pid = b.gep_index(table, gid);
            b.store(pid, cid);
            let t2 = b.create_block("s2_compress");
            let c2b = b.create_block("s2_cont");
            b.detach(t2, c2b);
            b.switch_to(t2);
            // S2: "compression" = weighted checksum (heavy serial loop,
            // parallel across chunks / out-of-order as in the paper)
            let wh3 = b.create_block("cmp_header");
            let body3 = b.create_block("cmp_body");
            let exit3 = b.create_block("cmp_exit");
            let pre3 = b.current_block();
            b.br(wh3);
            b.switch_to(wh3);
            let k3 = b.phi(Type::I64, vec![(pre3, zero)]);
            let sum = b.phi(Type::I64, vec![(pre3, zero)]);
            let c4 = b.icmp(CmpPred::Slt, k3, clen);
            b.cond_br(c4, body3, exit3);
            b.switch_to(body3);
            let off3 = b.mul(cid, clen);
            let off4 = b.add(off3, k3);
            let pb3 = b.gep_index(data, off4);
            let by = b.load(pb3);
            let byw = b.zext(by, Type::I64);
            let kp1 = b.add(k3, one);
            let wsum = b.mul(byw, kp1);
            let sum2 = b.add(sum, wsum);
            let k4 = b.add(k3, one);
            b.add_phi_incoming(k3, body3, k4);
            b.add_phi_incoming(sum, body3, sum2);
            b.br(wh3);
            b.switch_to(exit3);
            // S3 spawned from S2 with the compressed payload
            let t3 = b.create_block("s3_fresh");
            let c3 = b.create_block("s3_fresh_cont");
            let sdone = b.create_block("s2_done");
            b.detach(t3, c3);
            b.switch_to(t3);
            let zero32 = b.const_int(Type::I32, 0);
            let pay32 = b.trunc(sum, Type::I32);
            b.store(pflag, zero32);
            b.store(ppay, pay32);
            b.reattach(c3);
            b.switch_to(c3);
            b.sync(sdone);
            b.switch_to(sdone);
            b.reattach(c2b);
            b.switch_to(c2b);
        },
    );
    let cid2 = b.add(cid, one);
    let back = b.current_block();
    b.add_phi_incoming(cid, back, cid2);
    b.br(wh);

    b.switch_to(exit);
    b.sync(done);
    b.switch_to(done);
    b.ret(None);

    let mut module = Module::new("dedup");
    let func = module.add_function(b.finish());

    // --- input generation -------------------------------------------------
    let mut mem = vec![0u8; (out_off + out_len) as usize];
    let (nc, cl) = (nchunks as usize, chunk_len as usize);
    for c in 0..nc {
        let src = if c % 3 == 2 { c / 2 } else { c }; // every 3rd repeats
        for k in 0..cl {
            // byte content derived from the *source* chunk id so repeats
            // hash identically; kept below 0xFF (the sentinel).
            mem[c * cl + k] = (((src * 31 + k * 7) % 251) & 0xFE) as u8;
        }
    }

    BuiltWorkload {
        name: "dedup".to_string(),
        module,
        func,
        args: vec![
            Val::Int(0),
            Val::Int(fp_off),
            Val::Int(table_off),
            Val::Int(out_off),
            Val::Int(nchunks),
            Val::Int(chunk_len),
        ],
        mem,
        output: (out_off, out_len as usize),
        worker_task: "dedup::task1".to_string(),
        work_items: nchunks,
    }
}

/// Host-side oracle producing the expected output records.
pub fn expected(nchunks: u64, chunk_len: u64) -> Vec<u8> {
    let (nc, cl) = (nchunks as usize, chunk_len as usize);
    let chunk_byte = |c: usize, k: usize| -> u64 {
        let src = if c % 3 == 2 { c / 2 } else { c };
        (((src * 31 + k * 7) % 251) & 0xFE) as u64
    };
    let mut table: Vec<Option<(u64, u64)>> = vec![None; TABLE_SLOTS as usize];
    let mut out = Vec::with_capacity(nc * 8);
    for c in 0..nc {
        let mut fp = 0u64;
        for k in 0..cl {
            fp = fp.wrapping_mul(131).wrapping_add(chunk_byte(c, k));
        }
        let slot = (fp & (TABLE_SLOTS - 1)) as usize;
        match table[slot] {
            Some((h, id)) if h == fp => {
                out.extend_from_slice(&1i32.to_le_bytes());
                out.extend_from_slice(&(id as i32).to_le_bytes());
            }
            _ => {
                table[slot] = Some((fp, c as u64));
                let mut sum = 0u64;
                for k in 0..cl {
                    sum = sum.wrapping_add(chunk_byte(c, k).wrapping_mul(k as u64 + 1));
                }
                out.extend_from_slice(&0i32.to_le_bytes());
                out.extend_from_slice(&(sum as i32).to_le_bytes());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_oracle() {
        let wl = build(12, 8);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(12, 8).as_slice());
    }

    #[test]
    fn duplicates_detected() {
        let exp = expected(12, 8);
        // chunk 2 repeats chunk 1 -> flagged duplicate
        let flag = i32::from_le_bytes(exp[16..20].try_into().unwrap());
        assert_eq!(flag, 1);
        let matched = i32::from_le_bytes(exp[20..24].try_into().unwrap());
        assert_eq!(matched, 1);
    }

    #[test]
    fn fresh_chunks_compressed() {
        let exp = expected(6, 8);
        let flag0 = i32::from_le_bytes(exp[0..4].try_into().unwrap());
        assert_eq!(flag0, 0);
        let pay0 = i32::from_le_bytes(exp[4..8].try_into().unwrap());
        assert!(pay0 != 0, "compressed payload recorded");
    }

    #[test]
    fn pipeline_spawns_conditionally() {
        // spawns = fingerprint tasks (nchunks) + fresh*2 + dup*1
        let wl = build(12, 8);
        let mut mem = wl.mem.clone();
        let out = tapas_ir::interp::run(
            &wl.module,
            wl.func,
            &wl.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        let exp = expected(12, 8);
        let dups = (0..12)
            .filter(|c| i32::from_le_bytes(exp[c * 8..c * 8 + 4].try_into().unwrap()) == 1)
            .count() as u64;
        let fresh = 12 - dups;
        assert!(dups > 0, "workload must contain duplicates");
        assert_eq!(out.stats.spawns, 12 + fresh * 2 + dups);
    }

    #[test]
    fn four_heterogeneous_stages_extracted() {
        let wl = build(6, 8);
        let graphs = tapas_task::extract_module(&wl.module).unwrap();
        // root + fingerprint + s3_dup/s2/s3_fresh ordering may vary, but
        // there must be at least 5 tasks (root, S0 body, S3-dup, S2, S3).
        assert!(graphs[0].num_tasks() >= 5);
    }
}
