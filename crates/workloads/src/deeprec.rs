//! Deep spawn-chain recursion — the bounded-resource stress workload.
//!
//! `deeprec(depth)` is a linear chain: every level detaches exactly one
//! child that recurses one level deeper, syncs on it, then increments a
//! shared counter. Each level's queue entry stays parked at its `sync`
//! until the *entire* subtree below it completes, so running the chain
//! needs `depth` live task-queue entries at once — far beyond any
//! realistic `Ntasks`. Without admission control the accelerator
//! deadlocks almost immediately; with it, every run must terminate with
//! the counter equal to `depth` regardless of queue size. Not part of the
//! paper suite; used by the `reproduce stress` matrix.

use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FuncId, FunctionBuilder, Module, Type};

/// Build a chain of `depth` nested spawns. Memory: a single i32 counter at
/// byte 0 that finishes equal to `depth`.
pub fn build(depth: u64) -> BuiltWorkload {
    let mut module = Module::new("deeprec");
    let func = build_into(&mut module);
    BuiltWorkload {
        name: "deeprec".to_string(),
        module,
        func,
        args: vec![Val::Int(depth), Val::Int(0)],
        mem: vec![0u8; 8],
        output: (0, 4),
        worker_task: "deeprec::task1".to_string(),
        work_items: depth,
    }
}

/// Add the `deeprec` function to `module` and return its id.
///
/// Signature: `deeprec(n: i64, ctr: i32*) -> i32`. Level `n` spawns level
/// `n-1`, syncs, then bumps `*ctr`; the increments are fully serialized by
/// the syncs, so the result is determinate.
pub fn build_into(module: &mut Module) -> FuncId {
    let ctr_ty = Type::ptr(Type::I32);
    let mut b = FunctionBuilder::new("deeprec", vec![Type::I64, ctr_ty], Type::I32);
    let rec = b.create_block("rec");
    let base = b.create_block("base");
    let task = b.create_block("task");
    let cont = b.create_block("cont");
    let after = b.create_block("after");
    let (n, ctr) = (b.param(0), b.param(1));
    let zero = b.const_int(Type::I64, 0);
    let stop = b.icmp(CmpPred::Sle, n, zero);
    b.cond_br(stop, base, rec);

    b.switch_to(base);
    let z32 = b.const_int(Type::I32, 0);
    b.ret(Some(z32));

    // rec: spawn the next link of the chain, then wait for the whole
    // subtree before touching the counter.
    b.switch_to(rec);
    b.detach(task, cont);

    b.switch_to(task);
    let one = b.const_int(Type::I64, 1);
    let n1 = b.sub(n, one);
    b.call(FuncId(0), vec![n1, ctr], Type::I32);
    b.reattach(cont);

    b.switch_to(cont);
    b.sync(after);

    b.switch_to(after);
    let v = b.load(ctr);
    let one32 = b.const_int(Type::I32, 1);
    let v2 = b.add(v, one32);
    b.store(ctr, v2);
    b.ret(Some(v2));

    module.add_function(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_counts_every_level() {
        let wl = build(300);
        let mem = wl.golden_memory();
        let v = i32::from_le_bytes(mem[0..4].try_into().unwrap());
        assert_eq!(v, 300);
    }

    #[test]
    fn chain_is_verifier_clean() {
        let wl = build(4);
        tapas_ir::verify_module(&wl.module).unwrap();
    }
}
