//! Fibonacci — recursive parallelism with extremely fine-grain tasks
//! (Table II: 26 instructions per task). Each invocation spawns
//! `fib(n-1)` as a detached task and computes `fib(n-2)` in the
//! continuation, exactly the classic `cilk_spawn` pattern; the hardware
//! realizes the recursion through the task controller's asynchronous
//! queuing (§IV-C).
//!
//! Spawned children cannot return values through SSA (nothing may escape a
//! detached region), so each dynamic call writes its result into a scratch
//! heap indexed like a complete binary tree: the instance at node `k`
//! parks its left child's result at node `2k+1` — "return values are
//! passed through the shared cache", as the paper puts it.

use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FuncId, FunctionBuilder, Module, Type};

/// Build `fib(n)`. The scratch heap needs `2^(n+1)` i32 slots; the result
/// is the function's return value, also stored to slot 0 by the harness
/// convention (output region = first 4 bytes).
pub fn build(n: u64) -> BuiltWorkload {
    let mut module = Module::new("fib");
    let func = build_into(&mut module);

    let slots = 1usize << (n + 1);
    let mem = vec![0u8; slots * 4 + 4];
    BuiltWorkload {
        name: "fib".to_string(),
        module,
        func,
        args: vec![Val::Int(n), Val::Int(4), Val::Int(0)],
        mem,
        output: (0, 4),
        worker_task: "fib::task1".to_string(),
        work_items: fib_value(n) as u64 + 1,
    }
}

/// Add the `fib` function to an existing module and return its id.
///
/// Signature: `fib(n: i32-as-i64-truncated? no: (n: i32? )` — concretely
/// `fib(n: i64, heap: i32*, node: i64) -> i32`, where `heap[node]` receives
/// the result (so parents can read spawned children's values after sync).
pub fn build_into(module: &mut Module) -> FuncId {
    let heap_ty = Type::ptr(Type::I32);
    let mut b = FunctionBuilder::new("fib", vec![Type::I64, heap_ty, Type::I64], Type::I32);
    let rec = b.create_block("rec");
    let base = b.create_block("base");
    let task = b.create_block("task");
    let cont = b.create_block("cont");
    let after = b.create_block("after");
    let (n, heap, node) = (b.param(0), b.param(1), b.param(2));
    let two = b.const_int(Type::I64, 2);
    let c = b.icmp(CmpPred::Slt, n, two);
    b.cond_br(c, base, rec);

    // base: heap[node] = n; return n
    b.switch_to(base);
    let n32 = b.trunc(n, Type::I32);
    let pself = b.gep_index(heap, node);
    b.store(pself, n32);
    b.ret(Some(n32));

    // rec: spawn fib(n-1) into the left child slot
    b.switch_to(rec);
    b.detach(task, cont);

    b.switch_to(task);
    let one = b.const_int(Type::I64, 1);
    let n1 = b.sub(n, one);
    let lnode0 = b.mul(node, two);
    let lnode = b.add(lnode0, one);
    b.call(FuncId(0), vec![n1, heap, lnode], Type::I32);
    b.reattach(cont);

    // cont: compute fib(n-2) serially into the right child slot
    b.switch_to(cont);
    let n2 = b.sub(n, two);
    let rnode0 = b.mul(node, two);
    let rnode = b.add(rnode0, two);
    let r2 = b.call(FuncId(0), vec![n2, heap, rnode], Type::I32).unwrap();
    b.sync(after);

    // after: read the left child's parked result, add, park own result
    b.switch_to(after);
    let lnodeb0 = b.mul(node, two);
    let lnodeb = b.add(lnodeb0, one);
    let pl = b.gep_index(heap, lnodeb);
    let r1 = b.load(pl);
    let s = b.add(r1, r2);
    let pown = b.gep_index(heap, node);
    b.store(pown, s);
    b.ret(Some(s));

    module.add_function(b.finish())
}

/// Host-side fib oracle.
pub fn fib_value(n: u64) -> u32 {
    let (mut a, mut bv) = (0u32, 1u32);
    for _ in 0..n {
        let t = a.wrapping_add(bv);
        a = bv;
        bv = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_computes_fib() {
        let wl = build(10);
        let mut mem = wl.mem.clone();
        let out = tapas_ir::interp::run(
            &wl.module,
            wl.func,
            &wl.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(55)));
        assert_eq!(fib_value(10), 55);
    }

    #[test]
    fn result_parked_at_root_node() {
        let wl = build(9);
        let mem = wl.golden_memory();
        // args use node index 0 with heap at byte 4
        let v = i32::from_le_bytes(mem[4..8].try_into().unwrap());
        assert_eq!(v as u32, fib_value(9));
    }

    #[test]
    fn oracle_sequence() {
        let seq: Vec<u32> = (0..10).map(fib_value).collect();
        assert_eq!(seq, vec![0, 1, 1, 2, 3, 5, 8, 13, 21, 34]);
    }
}
