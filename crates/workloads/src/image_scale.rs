//! Image scaling — nested parallel loops with if-else control inside the
//! body (Table II: "Nested, If-else loops"). Scales a `w × h` 8-bit
//! grayscale image up by 2× with edge clamping: interior output pixels
//! average their two nearest source pixels, edge pixels replicate.

use crate::loops::{cilk_for, if_then_else};
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

/// Build the 2× upscaler. Layout: source `w·h` bytes at 0, destination
/// `2w·2h` bytes after it; the destination is the validated output.
pub fn build(w: u64, h: u64) -> BuiltWorkload {
    let ptr = Type::ptr(Type::I8);
    let mut b = FunctionBuilder::new(
        "image_scale",
        vec![ptr.clone(), ptr, Type::I64, Type::I64],
        Type::Void,
    );
    let (src, dst, wv, hv) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_int(Type::I64, 0);
    let one = b.const_int(Type::I64, 1);
    let two = b.const_int(Type::I64, 2);
    let h2 = b.mul(hv, two);
    let w2 = b.mul(wv, two);
    cilk_for(&mut b, zero, h2, |b, oy| {
        let zero_i = b.const_int(Type::I64, 0);
        cilk_for(b, zero_i, w2, |b, ox| {
            // source coordinates
            let sy = b.sdiv(oy, two);
            let sx = b.sdiv(ox, two);
            let srow = b.mul(sy, wv);
            let sidx = b.add(srow, sx);
            let ps = b.gep_index(src, sidx);
            let base = b.load(ps);
            let base16 = b.zext(base, Type::I16);
            // odd columns blend with the right neighbour when in bounds
            let oxbit = b.and(ox, one);
            let is_odd = b.icmp(CmpPred::Eq, oxbit, one);
            let sx1 = b.add(sx, one);
            let in_bounds = b.icmp(CmpPred::Slt, sx1, wv);
            let blend = b.and(is_odd, in_bounds);
            let orow = b.mul(oy, w2);
            let oidx = b.add(orow, ox);
            let pd = b.gep_index(dst, oidx);
            if_then_else(
                b,
                blend,
                |b| {
                    let sidx1 = b.add(sidx, one);
                    let ps1 = b.gep_index(src, sidx1);
                    let nb = b.load(ps1);
                    let nb16 = b.zext(nb, Type::I16);
                    let sum = b.add(base16, nb16);
                    let one16 = b.const_int(Type::I16, 1);
                    let avg = b.lshr(sum, one16);
                    let avg8 = b.trunc(avg, Type::I8);
                    b.store(pd, avg8);
                },
                |b| {
                    b.store(pd, base);
                },
            );
        });
    });
    b.ret(None);
    let mut module = Module::new("image_scale");
    let func = module.add_function(b.finish());

    let (wu, hu) = (w as usize, h as usize);
    let src_len = wu * hu;
    let dst_len = src_len * 4;
    let mut mem = vec![0u8; src_len + dst_len];
    for (k, px) in mem.iter_mut().enumerate().take(src_len) {
        *px = ((k * 37 + 11) % 251) as u8;
    }
    BuiltWorkload {
        name: "image_scale".to_string(),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(src_len as u64), Val::Int(w), Val::Int(h)],
        mem,
        output: (src_len as u64, dst_len),
        worker_task: "image_scale::task2".to_string(),
        work_items: 4 * w * h,
    }
}

/// Host-side oracle for the scaled image.
pub fn expected(w: u64, h: u64) -> Vec<u8> {
    let (wu, hu) = (w as usize, h as usize);
    let src: Vec<u8> = (0..wu * hu).map(|k| ((k * 37 + 11) % 251) as u8).collect();
    let mut out = vec![0u8; wu * hu * 4];
    for oy in 0..2 * hu {
        for ox in 0..2 * wu {
            let (sy, sx) = (oy / 2, ox / 2);
            let base = src[sy * wu + sx] as u16;
            let v = if ox % 2 == 1 && sx + 1 < wu {
                let nb = src[sy * wu + sx + 1] as u16;
                ((base + nb) >> 1) as u8
            } else {
                base as u8
            };
            out[oy * 2 * wu + ox] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_oracle() {
        let wl = build(8, 6);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(8, 6).as_slice());
    }

    #[test]
    fn edge_columns_replicate() {
        let exp = expected(4, 2);
        // last output column duplicates the last source pixel of its row
        let src: Vec<u8> = (0..8).map(|k| ((k * 37 + 11) % 251) as u8).collect();
        assert_eq!(exp[7], src[3]);
    }
}
