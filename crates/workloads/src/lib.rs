//! # tapas-workloads — the paper's benchmarks as parallel IR programs
//!
//! Table II of the paper evaluates seven applications chosen to stress the
//! patterns static HLS tools cannot express; this crate builds each of them
//! directly in the Tapir-marked IR, plus the Fig. 12 spawn-rate
//! microbenchmark:
//!
//! | name | pattern (paper's "HLS challenge") |
//! |---|---|
//! | [`matrix_add`] | nested parallel loops |
//! | [`image_scale`] | nested loops with if-else |
//! | [`saxpy`] | dynamic-exit parallel loop |
//! | [`stencil`] | parallel loop over serial nested loops |
//! | [`dedup`] | heterogeneous task pipeline with conditional stage |
//! | [`mergesort`] | recursive parallelism with serial merge |
//! | [`fib`] | recursive parallelism, fine-grain tasks |
//! | [`scale_micro`] | Fig. 12 `cilk_for` spawn-rate microbenchmark |
//! | [`deeprec`] | deep spawn-chain (bounded-resource stress, not in the paper) |
//!
//! Every builder returns a [`BuiltWorkload`]: the module, entry function,
//! call arguments, an initial memory image, and metadata (which task to
//! scale tiles on, how many work items a run processes). The same IR runs
//! on the reference interpreter, on the accelerator simulator, and through
//! the multicore baseline model — exactly the paper's "identical Cilk
//! programs" methodology.

#![warn(missing_docs)]

pub mod dedup;
pub mod deeprec;
pub mod fib;
pub mod image_scale;
pub mod loops;
pub mod matrix_add;
pub mod mergesort;
pub mod racy;
pub mod rng;
pub mod saxpy;
pub mod scale_micro;
pub mod source;
pub mod stencil;

use tapas_ir::interp::Val;
use tapas_ir::{FuncId, Module};

/// A fully-prepared workload instance.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// Workload name (matches the paper's tables).
    pub name: String,
    /// The IR module.
    pub module: Module,
    /// Entry function to invoke.
    pub func: FuncId,
    /// Invocation arguments.
    pub args: Vec<Val>,
    /// Initial memory image (device memory contents at offload).
    pub mem: Vec<u8>,
    /// Byte range `(start, len)` holding the result to validate.
    pub output: (u64, usize),
    /// Name of the task whose tile count the scalability experiments vary
    /// (the "worker" task).
    pub worker_task: String,
    /// Work items processed per run (elements, chunks, ...), for
    /// throughput metrics.
    pub work_items: u64,
}

impl BuiltWorkload {
    /// Run the workload on the reference interpreter, returning the final
    /// memory image.
    ///
    /// # Panics
    ///
    /// Panics if interpretation fails — workloads are expected to be
    /// well-formed by construction.
    pub fn golden_memory(&self) -> Vec<u8> {
        let mut mem = self.mem.clone();
        tapas_ir::interp::run(
            &self.module,
            self.func,
            &self.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", self.name));
        mem
    }

    /// The output region of a memory image.
    pub fn output_of<'a>(&self, mem: &'a [u8]) -> &'a [u8] {
        let (start, len) = self.output;
        &mem[start as usize..start as usize + len]
    }
}

/// The full benchmark suite at small "test" sizes (fast under the
/// interpreter and debug-build simulator).
pub fn suite_small() -> Vec<BuiltWorkload> {
    vec![
        matrix_add::build(16),
        image_scale::build(16, 16),
        saxpy::build(128),
        stencil::build(8, 8),
        dedup::build(24, 16),
        mergesort::build(96, 12345),
        fib::build(10),
    ]
}

/// The benchmark suite at the "evaluation" sizes used by the figure
/// harness (still simulator-friendly).
pub fn suite_eval() -> Vec<BuiltWorkload> {
    vec![
        matrix_add::build(96),
        image_scale::build(96, 96),
        saxpy::build(8192),
        stencil::build(48, 48),
        dedup::build(192, 48),
        mergesort::build(2048, 99),
        fib::build(16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_well_formed() {
        for wl in suite_small() {
            tapas_ir::verify_module(&wl.module)
                .unwrap_or_else(|e| panic!("{} failed verify: {:?}", wl.name, e));
            assert!(!wl.worker_task.is_empty());
            assert!(wl.work_items > 0);
            let (start, len) = wl.output;
            assert!(start as usize + len <= wl.mem.len());
        }
    }

    #[test]
    fn suite_names_match_paper() {
        let names: Vec<String> = suite_small().into_iter().map(|w| w.name).collect();
        for expected in
            ["matrix_add", "image_scale", "saxpy", "stencil", "dedup", "mergesort", "fib"]
        {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
