//! Structured-loop builders: `cilk_for` (detach per iteration) and serial
//! `for`, composable to arbitrary nesting depth — the construction rules
//! the Tapir front end applies to Cilk loops.

use tapas_ir::{BlockId, CmpPred, FunctionBuilder, Type, ValueId};

/// Emit a parallel `cilk_for i in start..end { body(i) }`.
///
/// The loop control becomes a task-spawning loop: each iteration's body is
/// a `detach`ed region, and the loop exit `sync`s all iterations — exactly
/// the Fig. 2 "dynamic parallelism" lowering. The builder is left
/// positioned in the block following the sync.
///
/// `body` receives the builder positioned inside the detached region and
/// the iteration variable; it may create blocks but must leave the builder
/// in an unterminated block (the reattach is appended).
pub fn cilk_for(
    b: &mut FunctionBuilder,
    start: ValueId,
    end: ValueId,
    body: impl FnOnce(&mut FunctionBuilder, ValueId),
) -> ValueId {
    let header = b.create_block("pfor_header");
    let spawn = b.create_block("pfor_spawn");
    let task = b.create_block("pfor_task");
    let latch = b.create_block("pfor_latch");
    let exit = b.create_block("pfor_exit");
    let done = b.create_block("pfor_done");
    let one = b.const_int(Type::I64, 1);
    let pre = b.current_block();
    b.br(header);

    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(pre, start)]);
    let c = b.icmp(CmpPred::Slt, i, end);
    b.cond_br(c, spawn, exit);

    b.switch_to(spawn);
    b.detach(task, latch);

    b.switch_to(task);
    body(b, i);
    b.reattach(latch);

    b.switch_to(latch);
    let i2 = b.add(i, one);
    b.add_phi_incoming(i, latch, i2);
    b.br(header);

    b.switch_to(exit);
    b.sync(done);
    b.switch_to(done);
    i
}

/// Emit a serial `for i in start..end { body(i) }`. The builder is left in
/// the loop's exit block. Returns the induction variable's phi.
pub fn serial_for(
    b: &mut FunctionBuilder,
    start: ValueId,
    end: ValueId,
    body: impl FnOnce(&mut FunctionBuilder, ValueId),
) -> ValueId {
    let header = b.create_block("for_header");
    let body_blk = b.create_block("for_body");
    let exit = b.create_block("for_exit");
    let one = b.const_int(Type::I64, 1);
    let pre = b.current_block();
    b.br(header);

    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(pre, start)]);
    let c = b.icmp(CmpPred::Slt, i, end);
    b.cond_br(c, body_blk, exit);

    b.switch_to(body_blk);
    body(b, i);
    let i2 = b.add(i, one);
    let back = b.current_block();
    b.add_phi_incoming(i, back, i2);
    b.br(header);

    b.switch_to(exit);
    i
}

/// Emit `if cond { then_body }`; the builder is left in the join block.
pub fn if_then(
    b: &mut FunctionBuilder,
    cond: ValueId,
    then_body: impl FnOnce(&mut FunctionBuilder),
) {
    let then_blk = b.create_block("if_then");
    let join = b.create_block("if_join");
    b.cond_br(cond, then_blk, join);
    b.switch_to(then_blk);
    then_body(b);
    b.br(join);
    b.switch_to(join);
}

/// Emit `if cond { a } else { b }`; the builder is left in the join block.
pub fn if_then_else(
    b: &mut FunctionBuilder,
    cond: ValueId,
    then_body: impl FnOnce(&mut FunctionBuilder),
    else_body: impl FnOnce(&mut FunctionBuilder),
) {
    let then_blk = b.create_block("ite_then");
    let else_blk = b.create_block("ite_else");
    let join = b.create_block("ite_join");
    b.cond_br(cond, then_blk, else_blk);
    b.switch_to(then_blk);
    then_body(b);
    b.br(join);
    b.switch_to(else_blk);
    else_body(b);
    b.br(join);
    b.switch_to(join);
}

/// The `BlockId` of a freshly positioned builder (convenience for phi
/// plumbing in workload code).
pub fn here(b: &FunctionBuilder) -> BlockId {
    b.current_block()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapas_ir::interp::{run, InterpConfig, Val};
    use tapas_ir::{FunctionBuilder, Module, Type};

    #[test]
    fn cilk_for_increments_every_element() {
        let mut b = FunctionBuilder::new("k", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        cilk_for(&mut b, zero, n, |b, i| {
            let p = b.gep_index(a, i);
            let v = b.load(p);
            let one = b.const_int(Type::I32, 1);
            let v2 = b.add(v, one);
            b.store(p, v2);
        });
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        tapas_ir::verify_module(&m).unwrap();
        let mut mem = vec![0u8; 40];
        let out =
            run(&m, f, &[Val::Int(0), Val::Int(10)], &mut mem, &InterpConfig::default()).unwrap();
        assert_eq!(out.stats.spawns, 10);
        for k in 0..10 {
            assert_eq!(mem[k * 4], 1);
        }
    }

    #[test]
    fn nested_serial_in_parallel() {
        // a[i] = sum of 0..4 for each i
        let mut b = FunctionBuilder::new("k", vec![Type::ptr(Type::I64), Type::I64], Type::Void);
        let (a, n) = (b.param(0), b.param(1));
        let zero = b.const_int(Type::I64, 0);
        let four = b.const_int(Type::I64, 4);
        cilk_for(&mut b, zero, n, |b, i| {
            let p = b.gep_index(a, i);
            serial_for(b, zero, four, |b, j| {
                let v = b.load(p);
                let v2 = b.add(v, j);
                b.store(p, v2);
            });
        });
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        tapas_ir::verify_module(&m).unwrap();
        let mut mem = vec![0u8; 24];
        run(&m, f, &[Val::Int(0), Val::Int(3)], &mut mem, &InterpConfig::default()).unwrap();
        for k in 0..3 {
            let v = i64::from_le_bytes(mem[k * 8..k * 8 + 8].try_into().unwrap());
            assert_eq!(v, 6);
        }
    }

    #[test]
    fn if_then_else_branches() {
        let mut b = FunctionBuilder::new("k", vec![Type::ptr(Type::I32), Type::I32], Type::Void);
        let (p, x) = (b.param(0), b.param(1));
        let ten = b.const_int(Type::I32, 10);
        let c = b.icmp(tapas_ir::CmpPred::Slt, x, ten);
        if_then_else(
            &mut b,
            c,
            |b| {
                let v = b.const_int(Type::I32, 1);
                b.store(p, v);
            },
            |b| {
                let v = b.const_int(Type::I32, 2);
                b.store(p, v);
            },
        );
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        tapas_ir::verify_module(&m).unwrap();
        let mut mem = vec![0u8; 4];
        run(&m, f, &[Val::Int(0), Val::Int(5)], &mut mem, &InterpConfig::default()).unwrap();
        assert_eq!(mem[0], 1);
        let mut mem = vec![0u8; 4];
        run(&m, f, &[Val::Int(0), Val::Int(15)], &mut mem, &InterpConfig::default()).unwrap();
        assert_eq!(mem[0], 2);
    }
}
