//! Matrix addition — nested parallel loops (the Fig. 3 running example):
//! `cilk_for i { cilk_for j { C[i][j] = A[i][j] + B[i][j] } }`.

use crate::loops::cilk_for;
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{FunctionBuilder, Module, Type};

/// Build matrix addition over `n × n` `i32` matrices.
///
/// Memory layout: `A` at 0, `B` at `n²·4`, `C` at `2·n²·4`; the output is
/// the `C` region.
pub fn build(n: u64) -> BuiltWorkload {
    let ptr = Type::ptr(Type::I32);
    let mut b = FunctionBuilder::new(
        "matrix_add",
        vec![ptr.clone(), ptr.clone(), ptr, Type::I64],
        Type::Void,
    );
    let (a, bb, c, nn) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_int(Type::I64, 0);
    cilk_for(&mut b, zero, nn, |b, i| {
        let zero_j = b.const_int(Type::I64, 0);
        cilk_for(b, zero_j, nn, |b, j| {
            let row = b.mul(i, nn);
            let idx = b.add(row, j);
            let pa = b.gep_index(a, idx);
            let pb = b.gep_index(bb, idx);
            let pc = b.gep_index(c, idx);
            let va = b.load(pa);
            let vb = b.load(pb);
            let s = b.add(va, vb);
            b.store(pc, s);
        });
    });
    b.ret(None);
    let mut module = Module::new("matrix_add");
    let func = module.add_function(b.finish());

    let cells = (n * n) as usize;
    let mut mem = vec![0u8; cells * 4 * 3];
    for k in 0..cells {
        let av = (k as i32).wrapping_mul(3) + 1;
        let bv = (k as i32).wrapping_mul(-7) + 11;
        mem[k * 4..k * 4 + 4].copy_from_slice(&av.to_le_bytes());
        let boff = cells * 4 + k * 4;
        mem[boff..boff + 4].copy_from_slice(&bv.to_le_bytes());
    }
    BuiltWorkload {
        name: "matrix_add".to_string(),
        module,
        func,
        args: vec![
            Val::Int(0),
            Val::Int(cells as u64 * 4),
            Val::Int(cells as u64 * 8),
            Val::Int(n),
        ],
        mem,
        output: (cells as u64 * 8, cells * 4),
        worker_task: "matrix_add::task2".to_string(),
        work_items: (n * n),
    }
}

/// Host-side oracle for the expected `C` contents.
pub fn expected(n: u64) -> Vec<u8> {
    let cells = (n * n) as usize;
    let mut out = Vec::with_capacity(cells * 4);
    for k in 0..cells {
        let av = (k as i32).wrapping_mul(3) + 1;
        let bv = (k as i32).wrapping_mul(-7) + 11;
        out.extend_from_slice(&(av.wrapping_add(bv)).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_oracle() {
        let wl = build(8);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(8));
    }

    #[test]
    fn spawns_n_plus_n_squared_tasks() {
        let wl = build(4);
        let mut mem = wl.mem.clone();
        let out = tapas_ir::interp::run(
            &wl.module,
            wl.func,
            &wl.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.spawns, 4 + 16, "outer rows + inner cells");
    }
}
