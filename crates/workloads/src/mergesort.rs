//! Merge sort — recursive parallelism (§IV-C, Fig. 11): partition, recurse
//! on both halves in parallel (`cilk_spawn` both, `cilk_sync`), then a
//! serial merge. Below a cutoff the task falls back to an in-place
//! insertion sort, as real Cilk mergesorts do.
//!
//! The merge writes through a temporary buffer so the recursion operates
//! in place on the primary array.

use crate::loops::serial_for;
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FuncId, FunctionBuilder, Module, Type};

/// Recursion cutoff below which the task sorts serially.
pub const CUTOFF: i64 = 8;

/// Build mergesort over `n` `i32` keys generated from `seed`.
/// Layout: the array at 0, a temp buffer of the same size after it; the
/// sorted array region is the output.
pub fn build(n: u64, seed: u64) -> BuiltWorkload {
    let mut module = Module::new("mergesort");
    let func = build_into(&mut module);

    let nu = n as usize;
    let mut mem = vec![0u8; nu * 8];
    for (k, v) in crate::rng::lcg_keys(n, seed).into_iter().enumerate() {
        mem[k * 4..k * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    BuiltWorkload {
        name: "mergesort".to_string(),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(n * 4), Val::Int(0), Val::Int(n)],
        mem,
        output: (0, nu * 4),
        worker_task: "mergesort::task1".to_string(),
        work_items: n,
    }
}

/// Add `mergesort(list: i32*, tmp: i32*, start: i64, end: i64)` (end
/// exclusive) to `module` and return its id.
pub fn build_into(module: &mut Module) -> FuncId {
    let ptr = Type::ptr(Type::I32);
    let mut b =
        FunctionBuilder::new("mergesort", vec![ptr.clone(), ptr, Type::I64, Type::I64], Type::Void);
    let small = b.create_block("small");
    let recurse = b.create_block("recurse");
    let t_left = b.create_block("t_left");
    let c_left = b.create_block("c_left");
    let t_right = b.create_block("t_right");
    let c_right = b.create_block("c_right");
    let merge = b.create_block("merge");

    let (list, tmp, start, end) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let one = b.const_int(Type::I64, 1);
    let two = b.const_int(Type::I64, 2);
    let len = b.sub(end, start);
    let cut = b.const_int(Type::I64, CUTOFF);
    let is_small = b.icmp(CmpPred::Sle, len, cut);
    b.cond_br(is_small, small, recurse);

    // small: insertion sort [start, end)
    b.switch_to(small);
    {
        let s1 = b.add(start, one);
        serial_for(&mut b, s1, end, |b, i| {
            // key = list[i]; shift larger elements right with a serial scan
            let pi = b.gep_index(list, i);
            let key = b.load(pi);
            // j runs from start..i; find elements > key and rotate.
            // Simple variant: for j in (start..i) from right: while-style
            // loop expressed as serial_for over k with conditional swap is
            // not a faithful insertion sort, so use an explicit while loop.
            let wh = b.create_block("ins_while");
            let wbody = b.create_block("ins_body");
            let wexit = b.create_block("ins_exit");
            let pre = b.current_block();
            b.br(wh);
            b.switch_to(wh);
            let j = b.phi(Type::I64, vec![(pre, i)]);
            let jgt = b.icmp(CmpPred::Sgt, j, start);
            // guard: j > start && list[j-1] > key. The load is hoisted above
            // the guard, so clamp the index to keep it in range when
            // j == start (the loaded value is then ignored by the select).
            let jm1 = b.sub(j, one);
            let jm1_safe = b.select(jgt, jm1, j);
            let pjm1 = b.gep_index(list, jm1_safe);
            let prev = b.load(pjm1);
            let gt = b.icmp(CmpPred::Sgt, prev, key);
            let fls = b.const_bool(false);
            let cond = b.select(jgt, gt, fls);
            b.cond_br(cond, wbody, wexit);
            b.switch_to(wbody);
            let pj = b.gep_index(list, j);
            b.store(pj, prev);
            let j2 = b.sub(j, one);
            b.add_phi_incoming(j, wbody, j2);
            b.br(wh);
            b.switch_to(wexit);
            let pj_final = b.gep_index(list, j);
            b.store(pj_final, key);
        });
        b.ret(None);
    }

    // recurse: mid = start + len/2; spawn sort(left); spawn sort(right); sync
    b.switch_to(recurse);
    let half = b.sdiv(len, two);
    let mid = b.add(start, half);
    b.detach(t_left, c_left);

    b.switch_to(t_left);
    b.call(FuncId(0), vec![list, tmp, start, mid], Type::Void);
    b.reattach(c_left);

    b.switch_to(c_left);
    b.detach(t_right, c_right);

    b.switch_to(t_right);
    b.call(FuncId(0), vec![list, tmp, mid, end], Type::Void);
    b.reattach(c_right);

    b.switch_to(c_right);
    b.sync(merge);

    // merge [start,mid) and [mid,end) through tmp, then copy back
    b.switch_to(merge);
    {
        // k: write cursor into tmp; i, j read cursors.
        let wh = b.create_block("mg_while");
        let wbody = b.create_block("mg_body");
        let takel = b.create_block("mg_takel");
        let taker = b.create_block("mg_taker");
        let wlatch = b.create_block("mg_latch");
        let wexit = b.create_block("mg_exit");
        let pre = b.current_block();
        b.br(wh);

        b.switch_to(wh);
        let i = b.phi(Type::I64, vec![(pre, start)]);
        let j = b.phi(Type::I64, vec![(pre, mid)]);
        let k = b.phi(Type::I64, vec![(pre, start)]);
        let more = b.icmp(CmpPred::Slt, k, end);
        b.cond_br(more, wbody, wexit);

        b.switch_to(wbody);
        // take from left if (i < mid) && (j >= end || list[i] <= list[j])
        let li = b.icmp(CmpPred::Slt, i, mid);
        let rj_done = b.icmp(CmpPred::Sge, j, end);
        // guarded loads: clamp indices so speculative loads stay in range
        let im = b.select(li, i, start);
        let jm0 = b.icmp(CmpPred::Slt, j, end);
        let jm = b.select(jm0, j, mid);
        let pi = b.gep_index(list, im);
        let pj = b.gep_index(list, jm);
        let vi = b.load(pi);
        let vj = b.load(pj);
        let le = b.icmp(CmpPred::Sle, vi, vj);
        let right_ok = b.bin(tapas_ir::BinOp::Or, rj_done, le);
        let take_left = b.and(li, right_ok);
        b.cond_br(take_left, takel, taker);

        b.switch_to(takel);
        let pk_l = b.gep_index(tmp, k);
        b.store(pk_l, vi);
        let i2 = b.add(i, one);
        b.br(wlatch);

        b.switch_to(taker);
        let pk_r = b.gep_index(tmp, k);
        b.store(pk_r, vj);
        let j2 = b.add(j, one);
        b.br(wlatch);

        b.switch_to(wlatch);
        let i_next = b.phi(Type::I64, vec![(takel, i2), (taker, i)]);
        let j_next = b.phi(Type::I64, vec![(takel, j), (taker, j2)]);
        let k2 = b.add(k, one);
        b.add_phi_incoming(i, wlatch, i_next);
        b.add_phi_incoming(j, wlatch, j_next);
        b.add_phi_incoming(k, wlatch, k2);
        b.br(wh);

        b.switch_to(wexit);
        serial_for(&mut b, start, end, |b, t| {
            let pt = b.gep_index(tmp, t);
            let v = b.load(pt);
            let pl = b.gep_index(list, t);
            b.store(pl, v);
        });
        b.ret(None);
    }

    module.add_function(b.finish())
}

/// Host-side oracle: the sorted keys for `(n, seed)`.
pub fn expected(n: u64, seed: u64) -> Vec<u8> {
    let nu = n as usize;
    let mut keys = crate::rng::lcg_keys(n, seed);
    keys.sort_unstable();
    let mut out = Vec::with_capacity(nu * 4);
    for k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_sorts() {
        let wl = build(64, 7);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(64, 7).as_slice());
    }

    #[test]
    fn small_arrays_hit_insertion_path() {
        let wl = build(CUTOFF as u64, 3);
        let mut mem = wl.mem.clone();
        let out = tapas_ir::interp::run(
            &wl.module,
            wl.func,
            &wl.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.spawns, 0, "cutoff-sized input never recurses");
        assert_eq!(wl.output_of(&mem), expected(CUTOFF as u64, 3).as_slice());
    }

    #[test]
    fn recursion_spawns_two_children_per_level() {
        let wl = build(2 * CUTOFF as u64, 5);
        let mut mem = wl.mem.clone();
        let out = tapas_ir::interp::run(
            &wl.module,
            wl.func,
            &wl.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        assert_eq!(out.stats.spawns, 2);
        assert_eq!(wl.output_of(&mem), expected(2 * CUTOFF as u64, 5).as_slice());
    }
}
