//! Deliberately racy variants of the paper workloads.
//!
//! These exist to validate the race-detection stack from both sides: the
//! static detector in `tapas-lint` must flag each of them, and the
//! dynamic SP-bags oracle in the interpreter must observe the race at
//! runtime. None of them belongs in a benchmark suite — their outputs are
//! schedule-dependent by construction.

use crate::loops::cilk_for;
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{FunctionBuilder, Module, Type};

/// SAXPY-style reduction gone wrong: every parallel iteration accumulates
/// into `y[0]` (`cilk_for i { y[0] += x[i] }`), so all instances collide
/// on one slot — write/write and read/write races across iterations.
pub fn saxpy_racy(n: u64) -> BuiltWorkload {
    let ptr = Type::ptr(Type::I32);
    let mut b = FunctionBuilder::new("saxpy_racy", vec![ptr.clone(), ptr, Type::I64], Type::Void);
    let (x, y, nn) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_int(Type::I64, 0);
    cilk_for(&mut b, zero, nn, |b, i| {
        let px = b.gep_index(x, i);
        let py = b.gep_index(y, zero);
        let vx = b.load(px);
        let acc = b.load(py);
        let s = b.add(acc, vx);
        b.store(py, s);
    });
    b.ret(None);
    let mut module = Module::new("saxpy_racy");
    let func = module.add_function(b.finish());

    let mut mem = vec![0u8; n as usize * 4 + 4];
    for k in 0..n as usize {
        mem[k * 4..k * 4 + 4].copy_from_slice(&(k as i32 + 1).to_le_bytes());
    }
    BuiltWorkload {
        name: "saxpy_racy".to_string(),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(n * 4), Val::Int(n)],
        mem,
        output: (n * 4, 4),
        worker_task: "saxpy_racy::task1".to_string(),
        work_items: n,
    }
}

/// Matrix-add variant whose inner task writes both `c[idx]` and
/// `c[idx + 1]`: iteration `j` and iteration `j + 1` of the inner
/// parallel loop overlap on one element — a write/write race between
/// logically parallel siblings.
pub fn matrix_add_racy(n: u64) -> BuiltWorkload {
    let ptr = Type::ptr(Type::I32);
    let mut b = FunctionBuilder::new(
        "matrix_add_racy",
        vec![ptr.clone(), ptr.clone(), ptr, Type::I64],
        Type::Void,
    );
    let (pa, pb, pc, nn) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_int(Type::I64, 0);
    cilk_for(&mut b, zero, nn, |b, i| {
        cilk_for(b, zero, nn, |b, j| {
            let one = b.const_int(Type::I64, 1);
            let row = b.mul(i, nn);
            let idx = b.add(row, j);
            let idx1 = b.add(idx, one);
            let ea = b.gep_index(pa, idx);
            let eb = b.gep_index(pb, idx);
            let ec = b.gep_index(pc, idx);
            let ec1 = b.gep_index(pc, idx1);
            let va = b.load(ea);
            let vb = b.load(eb);
            let s = b.add(va, vb);
            b.store(ec, s);
            b.store(ec1, s);
        });
    });
    b.ret(None);
    let mut module = Module::new("matrix_add_racy");
    let func = module.add_function(b.finish());

    let elems = (n * n) as usize;
    // One spare slot so the last instance's `c[idx + 1]` stays in bounds.
    let mut mem = vec![0u8; elems * 8 + (elems + 1) * 4];
    for k in 0..elems {
        mem[k * 4..k * 4 + 4].copy_from_slice(&(k as i32).to_le_bytes());
        let off = elems * 4 + k * 4;
        mem[off..off + 4].copy_from_slice(&(2 * k as i32).to_le_bytes());
    }
    BuiltWorkload {
        name: "matrix_add_racy".to_string(),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(n * n * 4), Val::Int(n * n * 8), Val::Int(n)],
        mem,
        output: (n * n * 8, (elems + 1) * 4),
        worker_task: "matrix_add_racy::task2".to_string(),
        work_items: n * n,
    }
}

/// The read-before-sync bug: a task is spawned to produce `a[0]`, but the
/// continuation reads it and stores the copy to `a[1]` *before* the sync.
pub fn unsynced_reduce() -> BuiltWorkload {
    let mut b = FunctionBuilder::new("unsynced_reduce", vec![Type::ptr(Type::I64)], Type::Void);
    let a = b.param(0);
    let task = b.create_block("task");
    let cont = b.create_block("cont");
    let done = b.create_block("done");
    let zero = b.const_int(Type::I64, 0);
    let one = b.const_int(Type::I64, 1);
    let val = b.const_int(Type::I64, 42);
    b.detach(task, cont);
    b.switch_to(task);
    let p0 = b.gep_index(a, zero);
    b.store(p0, val);
    b.reattach(cont);
    b.switch_to(cont);
    let p0b = b.gep_index(a, zero);
    let v = b.load(p0b);
    let p1 = b.gep_index(a, one);
    b.store(p1, v);
    b.sync(done);
    b.switch_to(done);
    b.ret(None);
    let mut module = Module::new("unsynced_reduce");
    let func = module.add_function(b.finish());

    BuiltWorkload {
        name: "unsynced_reduce".to_string(),
        module,
        func,
        args: vec![Val::Int(0)],
        mem: vec![0u8; 16],
        output: (8, 8),
        worker_task: "unsynced_reduce::task1".to_string(),
        work_items: 1,
    }
}

/// All racy variants, for corpus-level cross-validation.
pub fn racy_suite() -> Vec<BuiltWorkload> {
    vec![saxpy_racy(16), matrix_add_racy(8), unsynced_reduce()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn racy_variants_are_structurally_valid() {
        for wl in racy_suite() {
            tapas_ir::verify_module(&wl.module)
                .unwrap_or_else(|e| panic!("{} failed verify: {e:?}", wl.name));
            // They must still execute under serial elision.
            let _ = wl.golden_memory();
        }
    }
}
