//! Small deterministic PRNGs so workload inputs and randomized tests are
//! reproducible without any external dependency (the build must work with
//! no network access). `SplitMix64` is the stream generator; `Xorshift64`
//! is kept for cheap non-cryptographic mixing where a tiny state is
//! preferred. Both are well-known public-domain constructions.

/// SplitMix64: a fast, statistically solid 64-bit generator. One `u64` of
/// state, each call advances by a Weyl constant and mixes.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator; distinct seeds give independent-looking streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Modulo bias is negligible for the small bounds tests use.
        self.next_u64() % bound
    }

    /// Next `i64` drawn uniformly from the closed range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo.wrapping_add((self.next_u64() as u128 % span) as i64)
    }

    /// Next `i32` (full range).
    pub fn next_i32(&mut self) -> i32 {
        (self.next_u64() >> 32) as i32
    }

    /// Next boolean with probability `num/den` of being true.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_below(den) < num
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

/// Xorshift64: one xor-shift triple per call. Weaker than SplitMix64 but
/// a single register of state; used where a throwaway mixer suffices.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Seed the generator; a zero seed is remapped (xorshift fixes 0).
    pub fn new(seed: u64) -> Self {
        Xorshift64 { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

/// The legacy LCG input-key stream used by the mergesort workload since
/// the seed commit. Kept bit-identical so golden outputs do not shift.
pub fn lcg_keys(n: u64, seed: u64) -> Vec<i32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(1);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = SplitMix64::new(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = r.next_in_range(-5, 5);
            assert!((-5..=5).contains(&v));
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn xorshift_never_sticks_at_zero() {
        let mut r = Xorshift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn pick_is_uniform_and_in_bounds() {
        let mut r = SplitMix64::new(9);
        let items = [10u32, 20, 30, 40];
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let v = *r.pick(&items);
            let i = items.iter().position(|&x| x == v).expect("pick returned a foreign element");
            counts[i] += 1;
        }
        // Each bucket expects 1000; a 3x spread would signal a broken draw.
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..=1300).contains(&c), "bucket {i} count {c} far from uniform");
        }
    }

    #[test]
    fn scrambled_streams_are_independent() {
        // The generator derives per-cell streams as seed ^ (i+1)*WEYL; the
        // streams must not shadow each other (no shared prefixes, no lockstep).
        const WEYL: u64 = 0x9e37_79b9_7f4a_7c15;
        let seed = 0x5eed_f00d_u64;
        let streams: Vec<Vec<u64>> = (0..4u64)
            .map(|i| {
                let mut r = SplitMix64::new(seed ^ (i + 1).wrapping_mul(WEYL));
                (0..64).map(|_| r.next_u64()).collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                assert_ne!(streams[a], streams[b], "streams {a} and {b} coincide");
                let overlap = streams[a].iter().filter(|v| streams[b].contains(v)).count();
                assert!(
                    overlap <= 1,
                    "streams {a} and {b} share {overlap} of 64 values — correlated"
                );
            }
        }
    }

    #[test]
    fn next_below_passes_chi_square_sanity() {
        // 16 buckets, 16k draws → expected 1000 per bucket. The chi-square
        // 99.9th percentile for 15 degrees of freedom is ~37.7; a fixed seed
        // makes this deterministic, so the bound only trips on a real
        // distribution bug, not on sampling noise.
        let mut r = SplitMix64::new(0xc415_5eed);
        let mut counts = [0f64; 16];
        let draws = 16_000u64;
        for _ in 0..draws {
            counts[r.next_below(16) as usize] += 1.0;
        }
        let expected = draws as f64 / 16.0;
        let chi2: f64 = counts.iter().map(|c| (c - expected) * (c - expected) / expected).sum();
        assert!(chi2 < 37.7, "chi-square statistic {chi2:.2} exceeds the 99.9% bound");
    }

    #[test]
    fn lcg_matches_legacy_stream() {
        // First keys of the seed-commit stream for (n=3, seed=12345).
        let keys = lcg_keys(3, 12345);
        let mut state = 12345u64.wrapping_mul(2654435761).wrapping_add(1);
        let expect: Vec<i32> = (0..3)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as i32
            })
            .collect();
        assert_eq!(keys, expect);
    }
}
