//! SAXPY — `y[i] = a·x[i] + y[i]` over `f32` vectors, as a `cilk_for`
//! whose trip count is a runtime parameter (the paper's "dynamic exit
//! loop": the bound is unknown at hardware-generation time).

use crate::loops::cilk_for;
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{FBinOp, FunctionBuilder, Module, Type};

/// Build SAXPY over `n`-element `f32` vectors. Layout: `x` at 0, `y` at
/// `4n`; the output is the `y` region.
pub fn build(n: u64) -> BuiltWorkload {
    let ptr = Type::ptr(Type::F32);
    let mut b =
        FunctionBuilder::new("saxpy", vec![ptr.clone(), ptr, Type::F32, Type::I64], Type::Void);
    let (x, y, a, nn) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_int(Type::I64, 0);
    cilk_for(&mut b, zero, nn, |b, i| {
        let px = b.gep_index(x, i);
        let py = b.gep_index(y, i);
        let vx = b.load(px);
        let vy = b.load(py);
        let ax = b.fbin(FBinOp::FMul, a, vx);
        let s = b.fbin(FBinOp::FAdd, ax, vy);
        b.store(py, s);
    });
    b.ret(None);
    let mut module = Module::new("saxpy");
    let func = module.add_function(b.finish());

    let mut mem = vec![0u8; (n as usize) * 8];
    for k in 0..n as usize {
        let xv = (k as f32) * 0.5 + 1.0;
        let yv = (k as f32) * -0.25 + 2.0;
        mem[k * 4..k * 4 + 4].copy_from_slice(&xv.to_le_bytes());
        let off = (n as usize) * 4 + k * 4;
        mem[off..off + 4].copy_from_slice(&yv.to_le_bytes());
    }
    BuiltWorkload {
        name: "saxpy".to_string(),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(n * 4), Val::F32(2.0), Val::Int(n)],
        mem,
        output: (n * 4, n as usize * 4),
        worker_task: "saxpy::task1".to_string(),
        work_items: n,
    }
}

/// Host-side oracle for the expected `y` contents.
pub fn expected(n: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(n as usize * 4);
    for k in 0..n as usize {
        let xv = (k as f32) * 0.5 + 1.0;
        let yv = (k as f32) * -0.25 + 2.0;
        out.extend_from_slice(&(2.0f32 * xv + yv).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_oracle() {
        let wl = build(64);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(64));
    }
}
