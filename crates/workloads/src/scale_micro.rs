//! The Fig. 12 spawn-rate microbenchmark: `cilk_for(i in 0..n) { a[i]
//! (+1)×W }` with a configurable amount of register work `W` per task.
//! Used for the spawn-overhead study (§V-A), the utilization tables
//! (Table III, Fig. 14) and the tile-scaling plot (Fig. 13).

use crate::loops::cilk_for;
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{FunctionBuilder, Module, Type};

/// Build the `scale` microbenchmark: `n` tasks, each performing `adders`
/// dependent integer additions on `a[i]` before storing it back.
pub fn build(n: u64, adders: u32) -> BuiltWorkload {
    let ptr = Type::ptr(Type::I32);
    let mut b = FunctionBuilder::new("scale", vec![ptr, Type::I64], Type::Void);
    let (a, nn) = (b.param(0), b.param(1));
    let zero = b.const_int(Type::I64, 0);
    cilk_for(&mut b, zero, nn, |b, i| {
        let p = b.gep_index(a, i);
        let mut v = b.load(p);
        let one = b.const_int(Type::I32, 1);
        for _ in 0..adders {
            v = b.add(v, one);
        }
        b.store(p, v);
    });
    b.ret(None);
    let mut module = Module::new("scale");
    let func = module.add_function(b.finish());

    let mem = vec![0u8; n as usize * 4];
    BuiltWorkload {
        name: format!("scale_w{adders}"),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(n)],
        mem,
        output: (0, n as usize * 4),
        worker_task: "scale::task1".to_string(),
        work_items: n * u64::from(adders),
    }
}

/// Host-side oracle: every element equals `adders`.
pub fn expected(n: u64, adders: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(n as usize * 4);
    for _ in 0..n {
        out.extend_from_slice(&(adders as i32).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_oracle() {
        let wl = build(32, 10);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(32, 10).as_slice());
    }

    #[test]
    fn work_scales_with_adders() {
        let w10 = build(16, 10);
        let w50 = build(16, 50);
        let mut m10 = w10.mem.clone();
        let mut m50 = w50.mem.clone();
        let cfg = tapas_ir::interp::InterpConfig::default();
        let o10 = tapas_ir::interp::run(&w10.module, w10.func, &w10.args, &mut m10, &cfg).unwrap();
        let o50 = tapas_ir::interp::run(&w50.module, w50.func, &w50.args, &mut m50, &cfg).unwrap();
        assert!(o50.stats.insts > o10.stats.insts + 16 * 35);
        assert_eq!(o10.stats.spawns, 16);
        assert_eq!(o50.stats.spawns, 16);
    }
}
