//! The loop benchmarks expressed in the Cilk-like *source language* —
//! the same kernels as the builder modules, but entering the toolchain the
//! way the paper's Cilk programs do (source → Tapir-marked IR). Tests
//! cross-check every source kernel against its builder twin, pinning the
//! front end and the builder API to identical semantics.

use crate::BuiltWorkload;
use tapas_ir::interp::Val;

/// SAXPY from source (`y[i] = a*x[i] + y[i]`).
pub const SAXPY_SRC: &str = r#"
fn saxpy(x: *f32, y: *f32, a: f32, n: i64) {
    cilk_for i in 0..n {
        y[i] = a * x[i] + y[i];
    }
}
"#;

/// Matrix addition from source (nested `cilk_for`, Fig. 3).
pub const MATRIX_ADD_SRC: &str = r#"
fn matrix_add(a: *i32, b: *i32, c: *i32, n: i64) {
    cilk_for i in 0..n {
        cilk_for j in 0..n {
            c[i * n + j] = a[i * n + j] + b[i * n + j];
        }
    }
}
"#;

/// Stencil from source (parallel positions, serial neighbourhood with
/// bounds checks — Fig. 10).
pub const STENCIL_SRC: &str = r#"
fn stencil(inp: *i32, outp: *i32, nrows: i64, ncols: i64) {
    cilk_for pos in 0..nrows * ncols {
        let row = pos / ncols;
        let col = pos % ncols;
        for nr in 0..3 {
            for nc in 0..3 {
                let rr = row + nr - 1;
                let cc = col + nc - 1;
                if (rr >= 0 && rr < nrows) {
                    if (cc >= 0 && cc < ncols) {
                        outp[pos] = outp[pos] + inp[rr * ncols + cc];
                    }
                }
            }
        }
    }
}
"#;

/// Parallel fib from source (spawned recursion parking results in a heap,
/// §IV-C).
pub const FIB_SRC: &str = r#"
fn fib(n: i64, heap: *i32, node: i64) -> i32 {
    if (n < 2) {
        heap[node] = n as i32;
        return n as i32;
    }
    spawn { fib(n - 1, heap, 2 * node + 1); }
    let r2 = fib(n - 2, heap, 2 * node + 2);
    sync;
    let r1 = heap[2 * node + 1];
    let s = r1 + r2;
    heap[node] = s;
    return s;
}
"#;

/// Build the source-language SAXPY with the same memory image and
/// arguments as [`crate::saxpy::build`].
///
/// # Panics
///
/// Panics if the source fails to compile (a front-end regression).
pub fn saxpy_from_source(n: u64) -> BuiltWorkload {
    let twin = crate::saxpy::build(n);
    let module = tapas_lang::compile(SAXPY_SRC).expect("saxpy source compiles");
    let func = module.function_by_name("saxpy").expect("entry");
    BuiltWorkload { module, func, name: "saxpy_src".to_string(), ..twin }
}

/// Source-language matrix addition, twin of [`crate::matrix_add::build`].
///
/// # Panics
///
/// Panics if the source fails to compile.
pub fn matrix_add_from_source(n: u64) -> BuiltWorkload {
    let twin = crate::matrix_add::build(n);
    let module = tapas_lang::compile(MATRIX_ADD_SRC).expect("matrix source compiles");
    let func = module.function_by_name("matrix_add").expect("entry");
    BuiltWorkload { module, func, name: "matrix_add_src".to_string(), ..twin }
}

/// Source-language stencil, twin of [`crate::stencil::build`].
///
/// # Panics
///
/// Panics if the source fails to compile.
pub fn stencil_from_source(nrows: u64, ncols: u64) -> BuiltWorkload {
    let twin = crate::stencil::build(nrows, ncols);
    let module = tapas_lang::compile(STENCIL_SRC).expect("stencil source compiles");
    let func = module.function_by_name("stencil").expect("entry");
    BuiltWorkload { module, func, name: "stencil_src".to_string(), ..twin }
}

/// Source-language parallel fib, twin of [`crate::fib::build`].
///
/// # Panics
///
/// Panics if the source fails to compile.
pub fn fib_from_source(n: u64) -> BuiltWorkload {
    let twin = crate::fib::build(n);
    let module = tapas_lang::compile(FIB_SRC).expect("fib source compiles");
    let func = module.function_by_name("fib").expect("entry");
    BuiltWorkload {
        module,
        func,
        name: "fib_src".to_string(),
        args: vec![Val::Int(n), Val::Int(4), Val::Int(0)],
        ..twin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs_match(a: &BuiltWorkload, b: &BuiltWorkload) {
        let ma = a.golden_memory();
        let mb = b.golden_memory();
        assert_eq!(a.output_of(&ma), b.output_of(&mb), "{} and {} diverge", a.name, b.name);
    }

    #[test]
    fn saxpy_source_equals_builder() {
        outputs_match(&saxpy_from_source(96), &crate::saxpy::build(96));
    }

    #[test]
    fn matrix_source_equals_builder() {
        outputs_match(&matrix_add_from_source(12), &crate::matrix_add::build(12));
    }

    #[test]
    fn stencil_source_equals_builder() {
        outputs_match(&stencil_from_source(7, 9), &crate::stencil::build(7, 9));
    }

    #[test]
    fn fib_source_equals_builder() {
        let src = fib_from_source(11);
        let mut mem = src.mem.clone();
        let out = tapas_ir::interp::run(
            &src.module,
            src.func,
            &src.args,
            &mut mem,
            &tapas_ir::interp::InterpConfig::default(),
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(u64::from(crate::fib::fib_value(11)))));
    }

    #[test]
    fn source_kernels_spawn_like_builders() {
        // same dynamic task counts: the front end lowers cilk_for the same
        // way the builder helper does
        let a = saxpy_from_source(64);
        let b = crate::saxpy::build(64);
        let spawns = |wl: &BuiltWorkload| {
            let mut mem = wl.mem.clone();
            tapas_ir::interp::run(
                &wl.module,
                wl.func,
                &wl.args,
                &mut mem,
                &tapas_ir::interp::InterpConfig::default(),
            )
            .unwrap()
            .stats
            .spawns
        };
        assert_eq!(spawns(&a), spawns(&b));
    }
}
