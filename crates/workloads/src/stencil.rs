//! Stencil — a parallel loop over all positions with *serial* nested
//! neighbour loops and conditional bounds checks (Fig. 10 of the paper):
//! each task accumulates its in-bounds neighbourhood. The inner loops are
//! not parallel, so static HLS cannot just "parallelize the innermost
//! loop"; TAPAS decomposes the nest into task units instead.

use crate::loops::{cilk_for, if_then, serial_for};
use crate::BuiltWorkload;
use tapas_ir::interp::Val;
use tapas_ir::{CmpPred, FunctionBuilder, Module, Type};

/// Neighbourhood radius in rows/cols (the paper's `NBRROWS`/`NBRCOLS`).
pub const RADIUS: u64 = 1;

/// Build an `nrows × ncols` stencil over `i32` cells. Layout: input at 0,
/// output at `nrows·ncols·4`; the output region is validated.
pub fn build(nrows: u64, ncols: u64) -> BuiltWorkload {
    let ptr = Type::ptr(Type::I32);
    let mut b =
        FunctionBuilder::new("stencil", vec![ptr.clone(), ptr, Type::I64, Type::I64], Type::Void);
    let (inp, outp, nr_v, nc_v) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let zero = b.const_int(Type::I64, 0);
    let total = b.mul(nr_v, nc_v);
    let span = b.const_int(Type::I64, 2 * RADIUS as i64 + 1);
    let radius = b.const_int(Type::I64, RADIUS as i64);
    cilk_for(&mut b, zero, total, |b, pos| {
        // row = pos / ncols; col = pos % ncols
        let row = b.sdiv(pos, nc_v);
        let col = b.bin(tapas_ir::BinOp::SRem, pos, nc_v);
        let pacc = b.gep_index(outp, pos);
        serial_for(b, zero, span, |b, nr| {
            serial_for(b, zero, span, |b, nc| {
                let rr0 = b.add(row, nr);
                let rr = b.sub(rr0, radius);
                let cc0 = b.add(col, nc);
                let cc = b.sub(cc0, radius);
                // if (0 <= rr < nrows) and (0 <= cc < ncols): acc += in[rr][cc]
                let rok1 = b.icmp(CmpPred::Sge, rr, zero);
                let rok2 = b.icmp(CmpPred::Slt, rr, nr_v);
                let rok = b.and(rok1, rok2);
                let cok1 = b.icmp(CmpPred::Sge, cc, zero);
                let cok2 = b.icmp(CmpPred::Slt, cc, nc_v);
                let cok = b.and(cok1, cok2);
                let ok = b.and(rok, cok);
                if_then(b, ok, |b| {
                    let roff = b.mul(rr, nc_v);
                    let idx = b.add(roff, cc);
                    let pin = b.gep_index(inp, idx);
                    let v = b.load(pin);
                    let acc = b.load(pacc);
                    let acc2 = b.add(acc, v);
                    b.store(pacc, acc2);
                });
            });
        });
    });
    b.ret(None);
    let mut module = Module::new("stencil");
    let func = module.add_function(b.finish());

    let cells = (nrows * ncols) as usize;
    let mut mem = vec![0u8; cells * 8];
    for k in 0..cells {
        let v = (k as i32 % 17) - 8;
        mem[k * 4..k * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    BuiltWorkload {
        name: "stencil".to_string(),
        module,
        func,
        args: vec![Val::Int(0), Val::Int(cells as u64 * 4), Val::Int(nrows), Val::Int(ncols)],
        mem,
        output: (cells as u64 * 4, cells * 4),
        worker_task: "stencil::task1".to_string(),
        work_items: nrows * ncols,
    }
}

/// Host-side oracle: sum of the in-bounds 3×3 neighbourhood.
pub fn expected(nrows: u64, ncols: u64) -> Vec<u8> {
    let (nr, nc) = (nrows as i64, ncols as i64);
    let input = |r: i64, c: i64| ((r * nc + c) as i32 % 17) - 8;
    let mut out = Vec::new();
    for r in 0..nr {
        for c in 0..nc {
            let mut acc = 0i32;
            for dr in -(RADIUS as i64)..=(RADIUS as i64) {
                for dc in -(RADIUS as i64)..=(RADIUS as i64) {
                    let (rr, cc) = (r + dr, c + dc);
                    if rr >= 0 && rr < nr && cc >= 0 && cc < nc {
                        acc = acc.wrapping_add(input(rr, cc));
                    }
                }
            }
            out.extend_from_slice(&acc.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_oracle() {
        let wl = build(6, 5);
        let mem = wl.golden_memory();
        assert_eq!(wl.output_of(&mem), expected(6, 5));
    }

    #[test]
    fn corner_cells_sum_fewer_neighbours() {
        let exp = expected(4, 4);
        let corner = i32::from_le_bytes(exp[0..4].try_into().unwrap());
        // corner sees a 2x2 neighbourhood only
        let input = |r: i64, c: i64| ((r * 4 + c) as i32 % 17) - 8;
        assert_eq!(corner, input(0, 0) + input(0, 1) + input(1, 0) + input(1, 1));
    }
}
