//! Golden-hash lock for the hand-written benchmark suite.
//!
//! The traffic generator era brings refactors that touch the IR builder,
//! the loop helpers and the workload constructors. This lock pins a
//! fingerprint of every hand-written workload — the printed program text
//! *and* the interpreter golden memory — so any refactor that silently
//! perturbs a kernel (different instruction order, shifted memory layout,
//! changed input stream) fails here with the workload's name instead of
//! surfacing later as an inexplicable cycle-count or output change.
//!
//! If a change is *intentional* (a workload's definition really changed),
//! re-run this test: it prints the actual fingerprint table on mismatch;
//! paste it over the `LOCKED_*` constant.

use tapas_workloads::{suite_eval, suite_small, BuiltWorkload};

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// (name, hash of printed IR text, hash of the full golden memory image).
fn fingerprint(wl: &BuiltWorkload) -> (String, u64, u64) {
    let text = tapas_ir::printer::print_module(&wl.module);
    let golden = wl.golden_memory();
    (wl.name.clone(), fnv1a(text.as_bytes()), fnv1a(&golden))
}

fn check_suite(suite: &[BuiltWorkload], locked: &[(&str, u64, u64)], which: &str) {
    let actual: Vec<(String, u64, u64)> = suite.iter().map(fingerprint).collect();
    let matches = actual.len() == locked.len()
        && actual.iter().zip(locked).all(|(a, l)| a.0 == l.0 && a.1 == l.1 && a.2 == l.2);
    if !matches {
        let mut table = String::new();
        for (name, text, golden) in &actual {
            table.push_str(&format!("    (\"{name}\", {text:#018x}, {golden:#018x}),\n"));
        }
        panic!(
            "{which} fingerprints changed — if intentional, update LOCKED_{} to:\n{table}",
            which.to_uppercase()
        );
    }
}

const LOCKED_SMALL: &[(&str, u64, u64)] = &[
    ("matrix_add", 0x5031c424962cf383, 0xccd97260727912d2),
    ("image_scale", 0x4b2f61f5a0b9aae9, 0x8d332c4c83dea023),
    ("saxpy", 0x79643606f4f01f23, 0x85d34b0ffafebd0d),
    ("stencil", 0xd3c7b058bbf38be1, 0xf53d5caa975d0631),
    ("dedup", 0x28ace302d3aacbb7, 0x5f501051bccb4567),
    ("mergesort", 0xb5e388571b361c6a, 0x640129b9d7598e55),
    ("fib", 0x997a94720fa25b3e, 0x3fcb16b2f4aff215),
];

const LOCKED_EVAL: &[(&str, u64, u64)] = &[
    ("matrix_add", 0x5031c424962cf383, 0x8f4d90413b48efd5),
    ("image_scale", 0x4b2f61f5a0b9aae9, 0x0fe65149b7989608),
    ("saxpy", 0x79643606f4f01f23, 0xaa2cd146f2efebba),
    ("stencil", 0xd3c7b058bbf38be1, 0xe9728702de2f6692),
    ("dedup", 0x28ace302d3aacbb7, 0xd7bb0fc4c7b5bf41),
    ("mergesort", 0xb5e388571b361c6a, 0x40125cdffafc7259),
    ("fib", 0x997a94720fa25b3e, 0xef90720d0a02f456),
];

#[test]
fn small_suite_fingerprints_are_locked() {
    check_suite(&suite_small(), LOCKED_SMALL, "small");
}

#[test]
fn eval_suite_fingerprints_are_locked() {
    check_suite(&suite_eval(), LOCKED_EVAL, "eval");
}

#[test]
fn program_text_is_size_independent() {
    // The two suites build the same programs at different sizes; the IR
    // text must hash identically (sizes flow in as arguments and memory,
    // not as recompiled code). This is what makes the text lock a lock on
    // the *kernels*, not on the suite parameters.
    for (s, e) in suite_small().iter().zip(&suite_eval()) {
        assert_eq!(s.name, e.name);
        assert_eq!(
            fnv1a(tapas_ir::printer::print_module(&s.module).as_bytes()),
            fnv1a(tapas_ir::printer::print_module(&e.module).as_bytes()),
            "{}: program text differs between suite sizes",
            s.name
        );
    }
}
