//! Every workload must produce interpreter-identical results on the
//! cycle-level accelerator (the central functional claim of the port).

use tapas_sim::{Accelerator, AcceleratorConfig};
use tapas_workloads::suite_small;

#[test]
fn all_workloads_match_golden_on_accelerator() {
    for wl in suite_small() {
        let cfg = AcceleratorConfig {
            ntasks: 64,
            mem_bytes: wl.mem.len().max(1024),
            ..AcceleratorConfig::default()
        }
        .with_default_tiles(2);
        let mut acc = Accelerator::elaborate(&wl.module, &cfg)
            .unwrap_or_else(|e| panic!("{}: elaborate failed: {e}", wl.name));
        acc.mem_mut().write_bytes(0, &wl.mem);
        let out =
            acc.run(wl.func, &wl.args).unwrap_or_else(|e| panic!("{}: sim failed: {e}", wl.name));
        let gold = wl.golden_memory();
        assert_eq!(
            acc.mem().read_bytes(wl.output.0, wl.output.1),
            wl.output_of(&gold),
            "{}: accelerator output diverges from golden model",
            wl.name
        );
        assert!(out.cycles > 0, "{}", wl.name);
    }
}
