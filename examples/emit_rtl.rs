//! Emit the Chisel RTL the toolchain generates for an accelerator (the
//! paper's Fig. 4 / Fig. 6 output artifacts), plus the resource, frequency
//! and power estimates for both evaluation boards.
//!
//! Run with `cargo run --example emit_rtl`.

use tapas::res::{self, Board};
use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::saxpy;

fn main() {
    let wl = saxpy::build(1024);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let cfg = AcceleratorConfig::default().with_tiles(&wl.worker_task, 3);

    let rtl = design.emit_chisel(&cfg);
    println!("==== generated Chisel (first 60 lines) ====");
    for line in rtl.lines().take(60) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", rtl.lines().count());

    let info = design.design_info(&cfg);
    for board in [Board::CycloneV, Board::Arria10] {
        let est = res::estimate(&info, board);
        let power = res::power_watts(&est, est.fmax_mhz);
        println!(
            "{board:?}: {} ALMs ({:.1}% of chip), {} regs, {} BRAM, {:.0} MHz, {:.2} W",
            est.alms,
            est.utilization * 100.0,
            est.regs,
            est.brams,
            est.fmax_mhz,
            power
        );
    }

    let breakdown = res::breakdown(&info);
    println!(
        "\nALM breakdown: tiles {} | parallel-for {} | task ctrl {} | mem arb {} | misc {}",
        breakdown.tiles,
        breakdown.parallel_for,
        breakdown.task_ctrl,
        breakdown.mem_arb,
        breakdown.misc
    );
}
