//! What happens when the accelerator's hardware misbehaves? Inject a
//! deterministic fault plan into one benchmark and show each recovery
//! mechanism doing its job: memory retry masks a dropped response, ECC
//! masks a corrupted one, and quarantine fences a wedged tile while the
//! remaining tiles finish the run correctly.
//!
//! Run with `cargo run --release --example faults`.

use tapas::{AcceleratorConfig, Fault, FaultPlan, Toolchain};
use tapas_workloads::saxpy;

fn main() {
    let wl = saxpy::build(256);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");

    // Fault-free baseline: the golden cycle count and output bytes.
    let base = AcceleratorConfig::builder()
        .tiles(4)
        .mem_bytes(wl.mem.len().next_power_of_two().max(1 << 20))
        .build()
        .expect("valid configuration");
    let mut acc = design.instantiate(&base).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let clean = acc.run(wl.func, &wl.args).expect("fault-free run");
    let golden = acc.mem().read_bytes(wl.output.0, wl.output.1).to_vec();
    println!("fault-free: {} cycles", clean.cycles);

    // The wedge lands on the worker unit a third of the way through.
    let worker =
        acc.unit_names().iter().position(|n| *n == wl.worker_task).expect("worker unit exists");
    let plan = FaultPlan::new()
        .with(Fault::DropResponse { nth: 3 })
        .with(Fault::CorruptResponse { nth: 7, bit: 13 })
        .with(Fault::TileWedge { unit: worker, tile: 1, at: clean.cycles / 3 });

    let cfg = AcceleratorConfig { faults: Some(plan), ..base };
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("recovery masks every fault");
    assert_eq!(
        acc.mem().read_bytes(wl.output.0, wl.output.1),
        golden.as_slice(),
        "degraded run produced different bytes"
    );

    println!(
        "under faults: {} cycles (+{} recovery overhead)",
        out.cycles,
        out.cycles - clean.cycles
    );
    println!(
        "  {} faults injected: {} memory retries, {} ECC refetches, {} tile(s) quarantined",
        out.stats.faults_injected,
        out.stats.mem_retries,
        out.stats.ecc_retries,
        out.stats.quarantined_tiles
    );
    println!("output bytes identical to the fault-free run — every fault was masked");
}
