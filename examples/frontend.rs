//! Language-agnostic front end: compile Cilk-like *source text* through
//! the whole toolchain and run the generated accelerator — the same path
//! the paper drives through Tapir from Cilk/OpenMP.
//!
//! Run with `cargo run --example frontend`.

use tapas::ir::interp::Val;
use tapas::{AcceleratorConfig, Toolchain};

const SOURCE: &str = r#"
// Cilk-like source: histogram-equalize-ish kernel with a parallel loop,
// nested serial loop and data-dependent control flow.
fn smooth(src: *i32, dst: *i32, n: i64) {
    cilk_for i in 0..n {
        let acc: i32 = 0;
        for d in 0..3 {
            let j = i + d - 1;
            if (j >= 0) {
                if (j < n) {
                    acc = acc + src[j];
                }
            }
        }
        dst[i] = acc / 3;
    }
}

fn main_kernel(src: *i32, dst: *i32, n: i64, rounds: i64) {
    for r in 0..rounds {
        smooth(src, dst, n);
        smooth(dst, src, n);
    }
}
"#;

fn main() {
    let module = tapas::lang::compile(SOURCE).expect("source compiles");
    println!("compiled {} functions from source", module.num_functions());
    println!("{}", tapas::ir::printer::print_module(&module));

    let design = Toolchain::new().compile(&module).expect("toolchain compiles");
    println!(
        "task units: {:?}\n",
        design.task_report().iter().map(|r| &r.task).collect::<Vec<_>>()
    );

    let n = 64u64;
    let cfg = AcceleratorConfig::default().with_default_tiles(2);
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    for k in 0..n {
        acc.mem_mut().write_bytes(k * 4, &((k * k % 97) as i32).to_le_bytes());
    }
    let func = module.function_by_name("main_kernel").expect("entry exists");
    let out =
        acc.run(func, &[Val::Int(0), Val::Int(n * 4), Val::Int(n), Val::Int(2)]).expect("runs");
    println!("ran 2 smoothing rounds over {n} elements in {} cycles", out.cycles);
    println!("spawned {} tasks through {} calls", out.stats.spawns, out.stats.calls);

    // cross-check against the interpreter
    let mut golden = vec![0u8; (n * 8) as usize];
    for k in 0..n {
        golden[(k * 4) as usize..(k * 4 + 4) as usize]
            .copy_from_slice(&((k * k % 97) as i32).to_le_bytes());
    }
    tapas::ir::interp::run(
        &module,
        func,
        &[Val::Int(0), Val::Int(n * 4), Val::Int(n), Val::Int(2)],
        &mut golden,
        &tapas::ir::interp::InterpConfig::default(),
    )
    .expect("golden");
    assert_eq!(acc.mem().read_bytes(0, golden.len()), &golden[..]);
    println!("matches the golden model ✓");
}
