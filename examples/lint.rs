//! Run the static parallelism lints over the paper workloads and over
//! deliberately racy variants, cross-checking each verdict against the
//! interpreter's dynamic SP-bags race oracle.
//!
//! ```text
//! cargo run --example lint
//! ```

use tapas_ir::interp::{run, InterpConfig};
use tapas_lint::{lint_module, LintConfig};
use tapas_workloads::BuiltWorkload;

fn oracle_races(wl: &BuiltWorkload) -> usize {
    let mut mem = wl.mem.clone();
    let cfg = InterpConfig { detect_races: true, ..InterpConfig::default() };
    run(&wl.module, wl.func, &wl.args, &mut mem, &cfg).map(|o| o.races.len()).unwrap_or(0)
}

fn main() {
    let mut programs = tapas_workloads::suite_small();
    programs.extend(tapas_workloads::racy::racy_suite());
    for wl in programs {
        let report = lint_module(&wl.module, &LintConfig::default()).expect("well-formed module");
        println!("== {} ==", wl.name);
        println!("{report}");
        println!("dynamic oracle: {} race(s) observed\n", oracle_races(&wl));
    }

    // Strict mode surfaces what the default policy assumes away: pairs the
    // analysis cannot resolve, such as parallel recursive calls.
    let fib = tapas_workloads::fib::build(10);
    let strict = LintConfig { strict: true, ..LintConfig::default() };
    let report = lint_module(&fib.module, &strict).expect("well-formed module");
    println!("== {} (strict mode) ==", fib.name);
    println!("{report}");
}
