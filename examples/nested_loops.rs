//! Nested dynamic parallelism (the paper's Fig. 3 running example):
//! matrix addition as two nested `cilk_for` loops, swept over tile counts
//! to show the Stage-3 parameterization at work.
//!
//! Run with `cargo run --example nested_loops`.

use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::matrix_add;

fn main() {
    let n = 24u64;
    let wl = matrix_add::build(n);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");

    println!("matrix_add {n}x{n}: {} task units (T0 -> T1 -> T2)", design.num_tasks());
    for row in design.task_report() {
        println!("  {:<22} {:>3} insts {:>2} mem", row.task, row.insts, row.mem_ops);
    }

    println!("\n tiles |    cycles | speedup | tile busy%");
    let mut base = None;
    for tiles in [1usize, 2, 4, 8] {
        let cfg =
            AcceleratorConfig { mem_bytes: wl.mem.len().max(4096), ..AcceleratorConfig::default() }
                .with_tiles(&wl.worker_task, tiles);
        let mut acc = design.instantiate(&cfg).expect("elaborates");
        acc.mem_mut().write_bytes(0, &wl.mem);
        let out = acc.run(wl.func, &wl.args).expect("runs");
        // validate
        assert_eq!(
            acc.mem().read_bytes(wl.output.0, wl.output.1),
            matrix_add::expected(n),
            "results must be tile-count invariant"
        );
        let base_cycles = *base.get_or_insert(out.cycles);
        let worker =
            out.stats.units.iter().find(|u| u.name == wl.worker_task).expect("worker unit");
        let busy =
            100.0 * worker.busy_tile_cycles as f64 / (out.cycles as f64 * worker.tiles as f64);
        println!(
            " {tiles:>5} | {:>9} | {:>6.2}x | {busy:>8.1}%",
            out.cycles,
            base_cycles as f64 / out.cycles as f64
        );
    }
    println!("\nresults identical at every tile count ✓");
}
