//! The dynamic pipeline of the paper's Fig. 1: dedup with an ordered
//! fingerprint stage, a *conditional* compress stage that duplicates skip
//! entirely, and a write-back stage — the pattern static HLS pipelines and
//! FIFO queues cannot express.
//!
//! Run with `cargo run --example pipeline_dedup`.

use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::dedup;

fn main() {
    let (nchunks, chunk_len) = (48u64, 24u64);
    let wl = dedup::build(nchunks, chunk_len);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");

    println!("dedup pipeline: {} heterogeneous task units", design.num_tasks());
    for row in design.task_report() {
        println!(
            "  {:<22} {:>3} insts {:>2} mem {}",
            row.task,
            row.insts,
            row.mem_ops,
            if row.children > 0 { "(spawns children)" } else { "" }
        );
    }

    let cfg =
        AcceleratorConfig { mem_bytes: wl.mem.len().max(4096), ..AcceleratorConfig::default() }
            .with_default_tiles(2);
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("runs");

    let result = acc.mem().read_bytes(wl.output.0, wl.output.1).to_vec();
    assert_eq!(result, dedup::expected(nchunks, chunk_len));

    let mut dups = 0;
    for c in 0..nchunks as usize {
        let flag = i32::from_le_bytes(result[c * 8..c * 8 + 4].try_into().unwrap());
        dups += (flag == 1) as u32;
    }
    println!(
        "\n{nchunks} chunks -> {dups} duplicates detected, {} fresh chunks compressed",
        nchunks as u32 - dups
    );
    // fingerprint (1/chunk) + compress+write for fresh + write-only for dups
    let expected_spawns = nchunks + 2 * (nchunks - u64::from(dups)) + u64::from(dups);
    println!(
        "spawns: {} = {nchunks} fingerprints + 2x{} fresh + 1x{dups} duplicates",
        out.stats.spawns,
        nchunks - u64::from(dups)
    );
    assert_eq!(out.stats.spawns, expected_spawns, "duplicates must bypass the compress stage");
    println!("cycles: {}, output matches golden model ✓", out.cycles);
}
