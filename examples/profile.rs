//! Where does every tile-cycle go? Run the full benchmark suite with
//! cycle attribution on and print each design's stall breakdown and
//! bottleneck verdict.
//!
//! Run with `cargo run --release --example profile`.

use tapas::{AcceleratorConfig, ProfileLevel, StallReason, Toolchain};
use tapas_workloads::suite_small;

fn main() {
    for wl in suite_small() {
        // Recursive benchmarks spread tiles across every unit (the
        // recursion is the worker); loop benchmarks concentrate them on
        // the body task.
        let recursive = matches!(wl.name.as_str(), "fib" | "mergesort");
        let ntasks = if recursive { 512 } else { 32 };
        let base = AcceleratorConfig::builder()
            .ntasks(ntasks)
            .mem_bytes(wl.mem.len().next_power_of_two().max(1 << 20))
            .profile(ProfileLevel::Full)
            .build()
            .expect("valid configuration");
        let cfg = if recursive {
            base.with_default_tiles(4)
        } else {
            base.with_tiles(&wl.worker_task, 4)
        };

        let design = Toolchain::new().compile(&wl.module).expect("compiles");
        let mut acc = design.instantiate(&cfg).expect("elaborates");
        acc.mem_mut().write_bytes(0, &wl.mem);
        let out = acc.run(wl.func, &wl.args).expect("runs");
        let profile = out.profile.expect("profiling was enabled");
        profile.check_invariant().expect("the books balance");
        let report = profile.bottleneck();

        println!(
            "{:<12} {:>8} cycles  {:<14} (compute {:>2.0}%  memory {:>2.0}%  spawn {:>2.0}%)",
            wl.name,
            out.cycles,
            report.class.label(),
            report.compute_frac * 100.0,
            report.memory_frac * 100.0,
            report.spawn_frac * 100.0,
        );
        let tile_cycles = profile.cycles * profile.tile_count() as u64;
        for reason in StallReason::ALL {
            let cycles = profile.stall_total(reason);
            if cycles == 0 {
                continue;
            }
            let pct = 100.0 * cycles as f64 / tile_cycles as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            println!("    {:<18} {:>5.1}% {}", reason.label(), pct, bar);
        }
        println!();
    }
}
