//! Quickstart: build a parallel program in the IR, compile it with the
//! TAPAS toolchain, and run it on the cycle-level accelerator — comparing
//! against the reference interpreter.
//!
//! Run with `cargo run --example quickstart`.

use tapas::ir::interp::{self, Val};
use tapas::ir::{FunctionBuilder, Module, Type};
use tapas::{AcceleratorConfig, Toolchain};

fn main() {
    // --- 1. a parallel program: a[i] = a[i] * 3 + 1 over a cilk_for -----
    let mut b = FunctionBuilder::new("affine", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
    let (a, n) = (b.param(0), b.param(1));

    // cilk_for i in 0..n { spawned task per iteration }
    let header = b.create_block("header");
    let spawn = b.create_block("spawn");
    let task = b.create_block("task");
    let latch = b.create_block("latch");
    let exit = b.create_block("exit");
    let done = b.create_block("done");
    let zero = b.const_int(Type::I64, 0);
    let one = b.const_int(Type::I64, 1);
    let entry = b.current_block();
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, zero)]);
    let c = b.icmp(tapas::ir::CmpPred::Slt, i, n);
    b.cond_br(c, spawn, exit);
    b.switch_to(spawn);
    b.detach(task, latch);
    b.switch_to(task);
    let p = b.gep_index(a, i);
    let v = b.load(p);
    let three = b.const_int(Type::I32, 3);
    let one32 = b.const_int(Type::I32, 1);
    let t1 = b.mul(v, three);
    let t2 = b.add(t1, one32);
    b.store(p, t2);
    b.reattach(latch);
    b.switch_to(latch);
    let i2 = b.add(i, one);
    b.add_phi_incoming(i, latch, i2);
    b.br(header);
    b.switch_to(exit);
    b.sync(done);
    b.switch_to(done);
    b.ret(None);

    let mut module = Module::new("quickstart");
    let func = module.add_function(b.finish());
    tapas::ir::verify_module(&module).expect("well-formed IR");

    // --- 2. compile: Stage 1 (tasks) + Stage 2 (TXU dataflows) ----------
    let design = Toolchain::new().compile(&module).expect("compiles");
    println!("task units generated:");
    for row in design.task_report() {
        println!(
            "  {:<22} {:>3} insts {:>2} mem ops {:>2} args loop={}",
            row.task, row.insts, row.mem_ops, row.args, row.has_loop
        );
    }

    // --- 3. Stage 3: instantiate with 4 worker tiles and simulate -------
    const N: u64 = 64;
    let cfg = AcceleratorConfig::builder()
        .tile_override("affine::task1", 4)
        .build()
        .expect("valid configuration");
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    for k in 0..N {
        acc.mem_mut().write_bytes(k * 4, &(k as i32).to_le_bytes());
    }
    let out = acc.run(func, &[Val::Int(0), Val::Int(N)]).expect("runs");
    let min_spawn = out.stats.min_spawn_latency.expect("detaches ran");
    println!(
        "\naccelerator: {} cycles, {} spawns, min spawn latency {min_spawn} cycles",
        out.cycles, out.stats.spawns
    );
    println!("cache: {} hits / {} misses", out.stats.cache.hits, out.stats.cache.misses);

    // --- 4. validate against the reference interpreter ------------------
    let mut golden = vec![0u8; (N * 4) as usize];
    for k in 0..N as usize {
        golden[k * 4..k * 4 + 4].copy_from_slice(&(k as i32).to_le_bytes());
    }
    interp::run(
        &module,
        func,
        &[Val::Int(0), Val::Int(N)],
        &mut golden,
        &interp::InterpConfig::default(),
    )
    .expect("golden run");
    assert_eq!(acc.mem().read_bytes(0, golden.len()), &golden[..]);
    println!("\naccelerator output matches the golden model ✓");
}
