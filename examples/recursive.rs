//! Recursive parallelism on hardware (the paper's §IV-C): parallel
//! mergesort and fib run on the simulated accelerator, with the task
//! controller's asynchronous queuing providing the "program stack".
//!
//! Run with `cargo run --example recursive`.

use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::{fib, mergesort};

fn main() {
    // --- mergesort ------------------------------------------------------
    let n = 256u64;
    let wl = mergesort::build(n, 42);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let cfg = AcceleratorConfig {
        ntasks: 128,
        mem_bytes: wl.mem.len().max(4096),
        ..AcceleratorConfig::default()
    }
    .with_default_tiles(2);
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("runs");
    assert_eq!(
        acc.mem().read_bytes(wl.output.0, wl.output.1),
        mergesort::expected(n, 42),
        "accelerator must sort correctly"
    );
    println!(
        "mergesort n={n}: sorted ✓  {} cycles, {} spawned tasks, {} recursive calls",
        out.cycles, out.stats.spawns, out.stats.calls
    );
    let peak = out.stats.units.iter().map(|u| u.queue_peak).max().unwrap();
    println!("  peak task-queue occupancy: {peak} entries (LIFO keeps recursion bounded)");

    // --- fib --------------------------------------------------------------
    let wl = fib::build(15);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let cfg = AcceleratorConfig {
        ntasks: 256,
        mem_bytes: wl.mem.len().max(4096),
        ..AcceleratorConfig::default()
    }
    .with_default_tiles(4);
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("runs");
    let result = out.ret.expect("fib returns a value");
    println!(
        "\nfib(15) = {:?} (expect {}), {} cycles, {} tasks",
        result,
        fib::fib_value(15),
        out.cycles,
        out.stats.spawns + out.stats.calls
    );
    assert_eq!(result, tapas::ir::interp::Val::Int(fib_u64(15)));
    println!("recursion through task spawns works on the accelerator ✓");
}

fn fib_u64(n: u64) -> u64 {
    u64::from(fib::fib_value(n))
}
