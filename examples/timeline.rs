//! Render an ASCII timeline of task-unit activity from the simulator's
//! event trace — watching the dynamic task graph of Fig. 1/5 unfold.
//!
//! Run with `cargo run --release --example timeline`.

use tapas::sim::{SimEvent, SimEventKind};
use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::dedup;

fn main() {
    let wl = dedup::build(16, 12);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let cfg = AcceleratorConfig {
        record_events: true,
        mem_bytes: wl.mem.len().max(4096),
        ..AcceleratorConfig::default()
    }
    .with_default_tiles(2);
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("runs");
    let names = acc.unit_names();
    let events = acc.take_events();

    println!(
        "dedup, 16 chunks: {} cycles, {} spawns, {} events\n",
        out.cycles,
        out.stats.spawns,
        events.len()
    );

    // Bucket activity per unit into fixed-width columns.
    const COLS: usize = 72;
    let scale = (out.cycles as usize / COLS).max(1);
    for (u, name) in names.iter().enumerate() {
        let mut row = vec![b' '; COLS];
        for e in events.iter().filter(|e| e.unit == u) {
            let col = (e.cycle as usize / scale).min(COLS - 1);
            let ch = match e.kind {
                SimEventKind::Spawned { .. } => b'.',
                SimEventKind::Dispatched { .. } => b'#',
                SimEventKind::SyncWait => b's',
                SimEventKind::CallWait => b'c',
                SimEventKind::Completed => b'#',
                SimEventKind::CacheMiss { .. } => b'm',
                SimEventKind::Stolen { .. } => b'!',
            };
            // dispatch/complete dominate visual weight
            if row[col] != b'#' {
                row[col] = ch;
            }
        }
        println!("{:<22} |{}|", name, String::from_utf8(row).unwrap());
    }
    println!(
        "\nlegend: '.' spawn queued   '#' executing   's' sync-parked   'c' call-parked   \
         'm' cache miss   '!' stolen"
    );
    println!("(1 column ≈ {scale} cycles)");

    // The stage structure is visible: the ordered probe loop (root) runs the
    // whole time, the fingerprint stage fills the front, compress/write
    // stages trail it.
    let spawned: Vec<&SimEvent> =
        events.iter().filter(|e| matches!(e.kind, SimEventKind::Spawned { .. })).collect();
    assert_eq!(spawned.len() as u64, out.stats.spawns + 1);
}
