#!/usr/bin/env bash
# Full local gate: what CI runs, in the order that fails fastest.
# Each gate reports its wall time so slowdowns are caught as regressions,
# not discovered as CI timeouts.
set -euo pipefail
cd "$(dirname "$0")/.."

# The differential sweep seed: must match SWEEP_SEED in
# tests/differential.rs so a failure here replays locally unchanged.
DIFF_SEED=0x7A9A5CAF

gate() {
  local name="$1"; shift
  echo "==> ${name}"
  local t0=${SECONDS}
  "$@"
  echo "    (${name}: $((SECONDS - t0))s)"
}

profile_smoke() {
  ./target/release/reproduce profile --json /tmp/profile.json >/dev/null
  ./target/release/reproduce check-json /tmp/profile.json
}

faults_smoke() {
  ./target/release/reproduce faults --json /tmp/faults.json >/dev/null
  ./target/release/reproduce check-json /tmp/faults.json
}

stress_smoke() {
  timeout 60 ./target/release/reproduce stress --json /tmp/stress.json >/dev/null
  ./target/release/reproduce check-json /tmp/stress.json
}

tune_smoke() {
  # The opt-in feature matrix: every cell revalidates against the golden
  # model, the seed column must come out 1.00x, and the dump must
  # round-trip the schema check.
  timeout 120 ./target/release/reproduce tune --json /tmp/tune.json >/dev/null
  ./target/release/reproduce check-json /tmp/tune.json
}

analyze_smoke() {
  # Static work/span & occupancy analysis: building the table asserts
  # every interval brackets the interpreter's counters and the predicted
  # bottleneck matches the profiler; the dump must round-trip the schema
  # check.
  timeout 120 ./target/release/reproduce analyze --json /tmp/analyze.json >/dev/null
  ./target/release/reproduce check-json /tmp/analyze.json
}

bench_gate() {
  # Event-driven engine perf gate: re-runs the bench suite (cycle-identity
  # between the event-driven and stepped cores is asserted inside), checks
  # the dump against the schema golden, and fails if total wall clock
  # regressed more than 2x against the committed BENCH_8.json baseline.
  # Wall clock on a loaded machine is noisy, so the comparison is best of
  # three: one slow sample does not fail the gate.
  local i
  for i in 1 2 3; do
    timeout 300 ./target/release/reproduce bench --json /tmp/bench.json >/dev/null
    ./target/release/reproduce check-json /tmp/bench.json
    if ./target/release/reproduce bench-compare /tmp/bench.json BENCH_8.json; then
      return 0
    fi
    echo "    bench-compare sample ${i}/3 over budget; retrying"
  done
  return 1
}

executor_gate() {
  # Sharded-sweep executor gate: a forced panic and a forced watchdog
  # timeout must be isolated (the other cells still complete and report),
  # the run must exit non-zero, and resuming from the same checkpoint
  # without faults must reproduce the clean run's bytes.
  ./target/release/reproduce profile --no-checkpoint --json /tmp/exec_clean.json >/dev/null
  rm -f /tmp/exec_gate.jsonl
  if ./target/release/reproduce profile --jobs 2 --retries 1 --timeout-ms 2000 \
      --checkpoint /tmp/exec_gate.jsonl \
      --inject panic:profile/saxpy --inject timeout:profile/fib \
      --json /tmp/exec_faulted.json >/dev/null 2>/tmp/exec_faulted.err; then
    echo "    executor gate: injected faults must fail the run"
    return 1
  fi
  grep -q "panicked" /tmp/exec_faulted.err
  grep -q "timed-out" /tmp/exec_faulted.err
  ./target/release/reproduce profile --resume --checkpoint /tmp/exec_gate.jsonl \
      --json /tmp/exec_resumed.json >/dev/null
  cmp /tmp/exec_clean.json /tmp/exec_resumed.json
}

chaos_gate() {
  # Kill-and-resume crash-consistency gate. Inside every chaos cell the
  # engine is killed at a seeded cycle via the halt_at_cycle hook,
  # restored from its snapshot, and the resumed run must be byte-identical
  # to the golden uninterrupted one; --snapshot-every additionally routes
  # each trial through the on-disk snapshot ladder. On top, the sweep
  # itself is killed after 3 cells and resumed from its checkpoint; the
  # resumed run's JSON must match the uninterrupted run's bytes.
  timeout 300 ./target/release/reproduce chaos --no-checkpoint \
      --snapshot-every 40 --json /tmp/chaos_clean.json >/dev/null
  ./target/release/reproduce check-json /tmp/chaos_clean.json
  rm -f /tmp/chaos_gate.jsonl
  if timeout 300 ./target/release/reproduce chaos --halt-after 3 \
      --snapshot-every 40 --checkpoint /tmp/chaos_gate.jsonl \
      --json /tmp/chaos_halted.json >/dev/null 2>/dev/null; then
    echo "    chaos gate: a killed sweep must exit non-zero"
    return 1
  fi
  timeout 300 ./target/release/reproduce chaos --resume --snapshot-every 40 \
      --checkpoint /tmp/chaos_gate.jsonl --json /tmp/chaos_resumed.json >/dev/null
  cmp /tmp/chaos_clean.json /tmp/chaos_resumed.json
}

fuzzsim_gate() {
  # Generated-traffic differential campaign: every seed expands into a
  # lint-proven program checked against the interpreter golden model
  # across the sampled feature matrix; the dump must round-trip the
  # schema check and a known-clean repro line must replay clean.
  timeout 300 ./target/release/reproduce fuzzsim --jobs 4 --no-checkpoint \
      --json /tmp/fuzzsim.json >/dev/null
  ./target/release/reproduce check-json /tmp/fuzzsim.json
  ./target/release/reproduce fuzzsim --repro \
      "seed=0x0 steal=off banks=1 tiles=1 ntasks=256 admission=false engine=event faults=off kill=off" \
      >/dev/null
}

differential_sweep() {
  # Seeded random configs (steal x banks x tiles x ntasks x admission)
  # against the interpreter golden model; seed ${DIFF_SEED} is fixed in
  # tests/differential.rs.
  timeout 300 cargo test -q -p tapas-integration --test differential
}

gate "cargo fmt --check" cargo fmt --all -- --check
gate "cargo clippy (deny warnings)" cargo clippy --workspace --all-targets -- -D warnings
gate "cargo build --release" cargo build --release --workspace
gate "cargo test" cargo test --workspace -q
gate "reproduce profile smoke (JSON schema gate)" profile_smoke
gate "reproduce faults smoke (robustness gate)" faults_smoke
gate "reproduce stress (bounded-resource gate)" stress_smoke
gate "reproduce tune smoke (opt-in feature gate)" tune_smoke
gate "reproduce analyze smoke (static-analysis gate)" analyze_smoke
gate "reproduce bench (event-engine perf gate)" bench_gate
gate "sweep executor (fault-isolation + resume gate)" executor_gate
gate "chaos (kill-and-resume crash-consistency gate)" chaos_gate
gate "fuzzsim (generated-traffic differential gate)" fuzzsim_gate
gate "differential sweep (seed ${DIFF_SEED})" differential_sweep
gate "parser fuzz corpus (crash-hardening gate)" timeout 300 cargo test -q -p tapas-ir --test parse_fuzz

echo "All checks passed."
