#!/usr/bin/env bash
# Full local gate: what CI runs, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> reproduce profile smoke (JSON schema gate)"
./target/release/reproduce profile --json /tmp/profile.json >/dev/null
./target/release/reproduce check-json /tmp/profile.json

echo "==> reproduce faults smoke (robustness gate)"
./target/release/reproduce faults --json /tmp/faults.json >/dev/null
./target/release/reproduce check-json /tmp/faults.json

echo "==> reproduce stress (bounded-resource gate, must finish well under a minute)"
timeout 60 ./target/release/reproduce stress --json /tmp/stress.json >/dev/null
./target/release/reproduce check-json /tmp/stress.json

echo "==> parser fuzz corpus (crash-hardening gate)"
timeout 300 cargo test -q -p tapas-ir --test parse_fuzz

echo "All checks passed."
