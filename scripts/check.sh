#!/usr/bin/env bash
# Full local gate: what CI runs, in the order that fails fastest.
# Each gate reports its wall time so slowdowns are caught as regressions,
# not discovered as CI timeouts.
set -euo pipefail
cd "$(dirname "$0")/.."

# The differential sweep seed: must match SWEEP_SEED in
# tests/differential.rs so a failure here replays locally unchanged.
DIFF_SEED=0x7A9A5CAF

gate() {
  local name="$1"; shift
  echo "==> ${name}"
  local t0=${SECONDS}
  "$@"
  echo "    (${name}: $((SECONDS - t0))s)"
}

profile_smoke() {
  ./target/release/reproduce profile --json /tmp/profile.json >/dev/null
  ./target/release/reproduce check-json /tmp/profile.json
}

faults_smoke() {
  ./target/release/reproduce faults --json /tmp/faults.json >/dev/null
  ./target/release/reproduce check-json /tmp/faults.json
}

stress_smoke() {
  timeout 60 ./target/release/reproduce stress --json /tmp/stress.json >/dev/null
  ./target/release/reproduce check-json /tmp/stress.json
}

tune_smoke() {
  # The opt-in feature matrix: every cell revalidates against the golden
  # model, the seed column must come out 1.00x, and the dump must
  # round-trip the schema check.
  timeout 120 ./target/release/reproduce tune --json /tmp/tune.json >/dev/null
  ./target/release/reproduce check-json /tmp/tune.json
}

analyze_smoke() {
  # Static work/span & occupancy analysis: building the table asserts
  # every interval brackets the interpreter's counters and the predicted
  # bottleneck matches the profiler; the dump must round-trip the schema
  # check.
  timeout 120 ./target/release/reproduce analyze --json /tmp/analyze.json >/dev/null
  ./target/release/reproduce check-json /tmp/analyze.json
}

bench_gate() {
  # Event-driven engine perf gate: re-runs the bench suite (cycle-identity
  # between the event-driven and stepped cores is asserted inside), checks
  # the dump against the schema golden, and fails if total wall clock
  # regressed more than 2x against the committed BENCH_7.json baseline.
  timeout 300 ./target/release/reproduce bench --json /tmp/bench.json >/dev/null
  ./target/release/reproduce check-json /tmp/bench.json
  ./target/release/reproduce bench-compare /tmp/bench.json BENCH_7.json
}

differential_sweep() {
  # Seeded random configs (steal x banks x tiles x ntasks x admission)
  # against the interpreter golden model; seed ${DIFF_SEED} is fixed in
  # tests/differential.rs.
  timeout 300 cargo test -q -p tapas-integration --test differential
}

gate "cargo fmt --check" cargo fmt --all -- --check
gate "cargo clippy (deny warnings)" cargo clippy --workspace --all-targets -- -D warnings
gate "cargo build --release" cargo build --release --workspace
gate "cargo test" cargo test --workspace -q
gate "reproduce profile smoke (JSON schema gate)" profile_smoke
gate "reproduce faults smoke (robustness gate)" faults_smoke
gate "reproduce stress (bounded-resource gate)" stress_smoke
gate "reproduce tune smoke (opt-in feature gate)" tune_smoke
gate "reproduce analyze smoke (static-analysis gate)" analyze_smoke
gate "reproduce bench (event-engine perf gate)" bench_gate
gate "differential sweep (seed ${DIFF_SEED})" differential_sweep
gate "parser fuzz corpus (crash-hardening gate)" timeout 300 cargo test -q -p tapas-ir --test parse_fuzz

echo "All checks passed."
