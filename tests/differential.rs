//! The seeded differential sweep over the opt-in performance knobs:
//! every small-suite workload × random configurations (steal on/off ×
//! banks ∈ {1,2,4} × tiles × queue depth × admission control), each run
//! checked against the interpreter golden model, with features-disabled
//! samples additionally checked cycle-identical to the seed twin. See
//! `tapas_integration` for the harness and the minimizer.

use tapas_integration::{boundary_sweep, check_sample, differential_sweep, ConfigSample};
use tapas_workloads::saxpy;

/// The fixed sweep seed; `scripts/check.sh` runs the same seed so a CI
/// failure here reproduces locally with no extra flags.
const SWEEP_SEED: u64 = 0x7A9A_5CAF;

#[test]
fn sweep_small_suite_against_golden_and_seed_timing() {
    let checked = differential_sweep(SWEEP_SEED, 3).unwrap_or_else(|e| panic!("{e}"));
    // 7 workloads × 3 samples each; a shrunken sweep means the suite or
    // the sampler changed shape and this lockdown needs a fresh look.
    assert_eq!(checked, 21);
}

#[test]
fn a_second_seed_also_passes() {
    // One more stream so a knob interaction hiding behind the first
    // seed's draw order still gets a chance to surface.
    let checked = differential_sweep(SWEEP_SEED ^ 0xffff, 2).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(checked, 14);
}

#[test]
fn sweep_the_analyzers_safe_unsafe_ntasks_boundary() {
    // The static analyzer predicts the minimum deadlock-free queue depth
    // per workload; this sweep simulates exactly at that boundary: the
    // proven-safe side must complete and match golden, admission control
    // must rescue one-below-boundary runs, and the deep spawn chain must
    // actually wedge one-below-boundary when bare. Soundness, rescue and
    // tightness in one pass.
    let checked = boundary_sweep(SWEEP_SEED).unwrap_or_else(|e| panic!("{e}"));
    // 8 programs × safe side + 4 recursive-side checks (mergesort, fib,
    // deeprec×2): shape drift here means the corpus or the analyzer's
    // boundaries moved.
    assert_eq!(checked, 12);
}

#[test]
fn check_sample_accepts_a_known_good_config() {
    let wl = saxpy::build(128);
    let sample =
        ConfigSample { steal_latency: Some(4), banks: 4, tiles: 2, ntasks: 32, admission: false };
    check_sample(&wl, &sample).unwrap();
}

#[test]
fn disabled_sample_exercises_the_seed_twin_comparison() {
    // A features-disabled sample takes the cycle-identity branch: the
    // config built with `.steal()`/`.l1_banks()` left untouched must time
    // exactly like one that never mentions the knobs at all.
    let wl = saxpy::build(128);
    let sample =
        ConfigSample { steal_latency: None, banks: 1, tiles: 3, ntasks: 16, admission: true };
    assert!(sample.features_disabled());
    check_sample(&wl, &sample).unwrap();
}
