//! Source-to-hardware tests: Cilk-like programs compiled by `tapas-lang`,
//! run on the cycle-level accelerator, and validated against the
//! interpreter — the full "parallel program in, parallel accelerator out"
//! path of the paper's title.

use tapas::ir::interp::{self, Val};
use tapas::{AcceleratorConfig, Toolchain};

fn run_source(
    src: &str,
    entry: &str,
    args: &[Val],
    mem_init: &[u8],
) -> (Option<Val>, Vec<u8>, tapas::SimStats) {
    let module = tapas::lang::compile(src).expect("source compiles");
    let f = module.function_by_name(entry).expect("entry function");

    let mut gold_mem = mem_init.to_vec();
    let gold = interp::run(&module, f, args, &mut gold_mem, &interp::InterpConfig::default())
        .expect("golden run");

    let design = Toolchain::new().compile(&module).expect("toolchain");
    let cfg = AcceleratorConfig {
        ntasks: 256,
        mem_bytes: mem_init.len().max(4096),
        ..AcceleratorConfig::default()
    }
    .with_default_tiles(2);
    let mut acc = design.instantiate(&cfg).expect("elaborate");
    acc.mem_mut().write_bytes(0, mem_init);
    let out = acc.run(f, args).expect("simulate");

    assert_eq!(out.ret, gold.ret, "return value mismatch");
    assert_eq!(acc.mem().read_bytes(0, mem_init.len()), &gold_mem[..], "memory mismatch");
    (out.ret, gold_mem, out.stats)
}

#[test]
fn parallel_vector_scale_from_source() {
    let src = r#"
        fn scale(a: *i32, n: i64, k: i32) {
            cilk_for i in 0..n {
                a[i] = a[i] * k;
            }
        }
    "#;
    let mut mem = Vec::new();
    for v in 0..32i32 {
        mem.extend_from_slice(&v.to_le_bytes());
    }
    let (_, gold, stats) =
        run_source(src, "scale", &[Val::Int(0), Val::Int(32), Val::Int(3)], &mem);
    assert_eq!(stats.spawns, 32);
    assert_eq!(i32::from_le_bytes(gold[4..8].try_into().unwrap()), 3, "a[1] = 1 * 3");
}

#[test]
fn recursive_tree_sum_from_source() {
    // sum a binary-tree-shaped reduction via spawned halves through memory
    let src = r#"
        fn tree_sum(a: *i64, scratch: *i64, lo: i64, hi: i64, node: i64) -> i64 {
            if (hi - lo <= 4) {
                let acc: i64 = 0;
                for i in lo..hi {
                    acc = acc + a[i];
                }
                scratch[node] = acc;
                return acc;
            }
            let mid = lo + (hi - lo) / 2;
            spawn { tree_sum(a, scratch, lo, mid, 2 * node + 1); }
            let right = tree_sum(a, scratch, mid, hi, 2 * node + 2);
            sync;
            let left = scratch[2 * node + 1];
            let total = left + right;
            scratch[node] = total;
            return total;
        }
    "#;
    let n = 64usize;
    let mut mem = Vec::new();
    for v in 0..n as i64 {
        mem.extend_from_slice(&v.to_le_bytes());
    }
    mem.extend_from_slice(&vec![0u8; 8 * 256]); // scratch heap
    let (ret, _, stats) = run_source(
        src,
        "tree_sum",
        &[Val::Int(0), Val::Int(n as u64 * 8), Val::Int(0), Val::Int(n as u64), Val::Int(0)],
        &mem,
    );
    assert_eq!(ret, Some(Val::Int((n as u64 * (n as u64 - 1)) / 2)));
    assert!(stats.spawns > 4, "the divide phase spawns");
    assert!(stats.calls > 4, "recursion bridges through calls");
}

#[test]
fn conditional_parallel_work_from_source() {
    // Fig. 2's motivating pattern: spawn only for valid elements.
    let src = r#"
        fn process_valid(flags: *i32, data: *i32, n: i64) {
            cilk_for i in 0..n {
                if (flags[i] == 1) {
                    data[i] = data[i] * data[i];
                }
            }
        }
    "#;
    let n = 24usize;
    let mut mem = Vec::new();
    for i in 0..n {
        mem.extend_from_slice(&((i % 2 == 0) as i32).to_le_bytes());
    }
    for i in 0..n {
        mem.extend_from_slice(&(i as i32 + 1).to_le_bytes());
    }
    let (_, gold, _) = run_source(
        src,
        "process_valid",
        &[Val::Int(0), Val::Int(n as u64 * 4), Val::Int(n as u64)],
        &mem,
    );
    // even indices squared, odd untouched
    let d = |i: usize| i32::from_le_bytes(gold[(n + i) * 4..(n + i) * 4 + 4].try_into().unwrap());
    assert_eq!(d(0), 1);
    assert_eq!(d(1), 2);
    assert_eq!(d(2), 9);
    assert_eq!(d(3), 4);
}

#[test]
fn float_pipeline_from_source() {
    let src = r#"
        fn normalize(v: *f64, n: i64, scale: f64) {
            cilk_for i in 0..n {
                v[i] = v[i] / scale;
            }
        }
    "#;
    let mut mem = Vec::new();
    for i in 0..16 {
        mem.extend_from_slice(&(i as f64 * 4.0).to_le_bytes());
    }
    let (_, gold, _) =
        run_source(src, "normalize", &[Val::Int(0), Val::Int(16), Val::F64(2.0)], &mem);
    let v3 = f64::from_le_bytes(gold[24..32].try_into().unwrap());
    assert_eq!(v3, 6.0);
}

#[test]
fn emitted_rtl_from_source_has_units() {
    let src = r#"
        fn k(a: *i32, n: i64) {
            cilk_for i in 0..n { a[i] = a[i] + 1; }
        }
    "#;
    let module = tapas::lang::compile(src).unwrap();
    let design = Toolchain::new().compile(&module).unwrap();
    let rtl = design.emit_chisel(&AcceleratorConfig::default());
    assert!(rtl.contains("SpawnPort"));
    assert!(rtl.contains("Load4B"));
}
