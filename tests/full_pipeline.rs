//! End-to-end pipeline tests: every paper benchmark through
//! IR → verify → Stage 1 (tasks) → Stage 2 (dataflow) → Stage 3
//! (simulate / emit RTL / estimate resources), validated against the
//! reference interpreter at several hardware configurations.

use tapas::res::Board;
use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::{suite_small, BuiltWorkload};

fn run_and_check(wl: &BuiltWorkload, cfg: &AcceleratorConfig) -> tapas::SimOutcome {
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let mut acc = design.instantiate(cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("runs");
    let golden = wl.golden_memory();
    assert_eq!(
        acc.mem().read_bytes(wl.output.0, wl.output.1),
        wl.output_of(&golden),
        "{}: output mismatch",
        wl.name
    );
    out
}

fn cfg_for(wl: &BuiltWorkload, tiles: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        ntasks: 512,
        mem_bytes: wl.mem.len().max(4096),
        ..AcceleratorConfig::default()
    }
    .with_default_tiles(tiles)
}

#[test]
fn every_benchmark_matches_golden_at_one_tile() {
    for wl in suite_small() {
        run_and_check(&wl, &cfg_for(&wl, 1));
    }
}

#[test]
fn every_benchmark_matches_golden_at_four_tiles() {
    for wl in suite_small() {
        run_and_check(&wl, &cfg_for(&wl, 4));
    }
}

#[test]
fn tile_count_never_changes_results_only_time() {
    for wl in suite_small() {
        let c1 = run_and_check(&wl, &cfg_for(&wl, 1)).cycles;
        let c8 = run_and_check(&wl, &cfg_for(&wl, 8)).cycles;
        assert!(c8 <= c1, "{}: 8 tiles slower than 1 ({c8} vs {c1})", wl.name);
    }
}

#[test]
fn queue_depth_changes_timing_not_results() {
    let wl = tapas_workloads::fib::build(12);
    let shallow = AcceleratorConfig {
        ntasks: 96,
        mem_bytes: wl.mem.len().max(4096),
        ..AcceleratorConfig::default()
    }
    .with_default_tiles(2);
    let deep = AcceleratorConfig { ntasks: 256, ..shallow.clone() };
    let a = run_and_check(&wl, &shallow);
    let b = run_and_check(&wl, &deep);
    assert_eq!(a.ret, b.ret);
}

#[test]
fn profiling_never_changes_the_simulation() {
    // The profiler must be pure observation: for every benchmark the
    // outcome of a profiled run is indistinguishable from an unprofiled
    // one (same cycles, same result, same counters) — profiling off means
    // literally nothing changes but the attached `profile`.
    for wl in suite_small() {
        let off = run_and_check(&wl, &cfg_for(&wl, 2));
        let profiled = AcceleratorConfig { profile: tapas::ProfileLevel::Full, ..cfg_for(&wl, 2) };
        let on = run_and_check(&wl, &profiled);
        assert!(off.profile.is_none(), "{}: no profile unless requested", wl.name);
        assert!(on.profile.is_some(), "{}", wl.name);
        assert_eq!(off.cycles, on.cycles, "{}: profiling perturbed timing", wl.name);
        assert_eq!(off.ret, on.ret, "{}", wl.name);
        assert_eq!(off.stats.spawns, on.stats.spawns, "{}", wl.name);
        assert_eq!(off.stats.calls, on.stats.calls, "{}", wl.name);
        assert_eq!(off.stats.cache.hits, on.stats.cache.hits, "{}", wl.name);
        assert_eq!(off.stats.cache.misses, on.stats.cache.misses, "{}", wl.name);
        assert_eq!(off.stats.min_spawn_latency, on.stats.min_spawn_latency, "{}", wl.name);
    }
}

#[test]
fn rtl_emitted_for_every_benchmark() {
    for wl in suite_small() {
        let design = Toolchain::new().compile(&wl.module).expect("compiles");
        let rtl = design.emit_chisel(&AcceleratorConfig::default());
        assert!(rtl.contains("extends Module"), "{}", wl.name);
        // one TXU class and one unit class per task
        let txus = rtl.matches("Txu extends Module").count();
        assert!(txus >= design.num_tasks(), "{}: {txus} TXUs", wl.name);
        assert!(rtl.contains("SharedL1cache"));
    }
}

#[test]
fn resource_estimates_cover_every_benchmark_and_board() {
    for wl in suite_small() {
        let design = Toolchain::new().compile(&wl.module).expect("compiles");
        let info = design.design_info(&AcceleratorConfig::default());
        for board in [Board::CycloneV, Board::Arria10] {
            let est = tapas::res::estimate(&info, board);
            assert!(est.alms > 500, "{}: {} ALMs", wl.name, est.alms);
            assert!(est.fmax_mhz > 100.0);
            assert!(est.brams >= info.units.len() as u64);
            let w = tapas::res::power_watts(&est, est.fmax_mhz);
            assert!(w > 0.6 && w < 10.0, "{}: {w} W", wl.name);
        }
    }
}

#[test]
fn stats_account_for_all_spawned_tasks() {
    for wl in suite_small() {
        let out = run_and_check(&wl, &cfg_for(&wl, 2));
        let executed: u64 = out.stats.units.iter().map(|u| u.tasks_executed).sum();
        // every detach + every call + the host root = completed instances
        assert_eq!(
            executed,
            out.stats.spawns + out.stats.calls + 1,
            "{}: task accounting mismatch",
            wl.name
        );
    }
}

#[test]
fn interpreter_and_simulator_agree_on_return_values() {
    let wl = tapas_workloads::fib::build(12);
    let out = run_and_check(&wl, &cfg_for(&wl, 2));
    let mut mem = wl.mem.clone();
    let gold = tapas::ir::interp::run(
        &wl.module,
        wl.func,
        &wl.args,
        &mut mem,
        &tapas::ir::interp::InterpConfig::default(),
    )
    .unwrap();
    assert_eq!(out.ret, gold.ret);
}

#[test]
fn cold_vs_warm_cache_affects_cycles_not_output() {
    let wl = tapas_workloads::saxpy::build(64);
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let cfg = cfg_for(&wl, 2);
    let mut acc = design.instantiate(&cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let cold = acc.run(wl.func, &wl.args).expect("cold run");
    // Re-run warm: results recomputed over the mutated y, but the second
    // run's new misses (cache counters are cumulative) must not exceed the
    // cold run's.
    let warm = acc.run(wl.func, &wl.args).expect("warm run");
    let warm_misses = warm.stats.cache.misses - cold.stats.cache.misses;
    assert!(warm_misses <= cold.stats.cache.misses);
}

#[test]
fn textual_ir_roundtrips_every_benchmark() {
    use tapas::ir::{printer, text};
    for wl in suite_small() {
        let t1 = printer::print_module(&wl.module);
        let m2 =
            text::parse_module(&t1).unwrap_or_else(|e| panic!("{}: parse failed: {e}", wl.name));
        tapas::ir::verify_module(&m2).unwrap();
        let t2 = printer::print_module(&m2);
        let m3 = text::parse_module(&t2).unwrap();
        assert_eq!(printer::print_module(&m3), t2, "{}: printed IR not a fixed point", wl.name);
        // The reparsed module still runs and matches the oracle.
        let f2 = m2
            .function_by_name(&wl.module.function(wl.func).name)
            .expect("entry survives roundtrip");
        let mut mem = wl.mem.clone();
        tapas::ir::interp::run(
            &m2,
            f2,
            &wl.args,
            &mut mem,
            &tapas::ir::interp::InterpConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{}: reparsed module failed: {e}", wl.name));
        let golden = wl.golden_memory();
        assert_eq!(
            wl.output_of(&mem),
            wl.output_of(&golden),
            "{}: roundtripped module diverges",
            wl.name
        );
    }
}

#[test]
fn optimizer_preserves_every_benchmark() {
    use tapas::ir::opt;
    for wl in suite_small() {
        let mut m = wl.module.clone();
        let stats = opt::optimize_module(&mut m);
        tapas::ir::verify_module(&m)
            .unwrap_or_else(|e| panic!("{}: opt broke verify: {e:?}", wl.name));
        let f = m.function_by_name(&wl.module.function(wl.func).name).unwrap();
        let mut mem = wl.mem.clone();
        tapas::ir::interp::run(
            &m,
            f,
            &wl.args,
            &mut mem,
            &tapas::ir::interp::InterpConfig::default(),
        )
        .unwrap();
        let golden = wl.golden_memory();
        assert_eq!(
            wl.output_of(&mem),
            wl.output_of(&golden),
            "{}: optimizer changed results ({} rewrites)",
            wl.name,
            stats.total()
        );
        // And the optimized module still compiles + simulates correctly.
        let out = {
            let design = Toolchain::new().compile(&m).expect("optimized compiles");
            let cfg = cfg_for(&wl, 2);
            let mut acc = design.instantiate(&cfg).expect("elaborates");
            acc.mem_mut().write_bytes(0, &wl.mem);
            acc.run(f, &wl.args).expect("runs");
            acc.mem().read_bytes(wl.output.0, wl.output.1).to_vec()
        };
        assert_eq!(out, wl.output_of(&golden), "{}", wl.name);
    }
}
