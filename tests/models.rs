//! Cross-crate model sanity: the resource/power/frequency models, the
//! multicore baseline and the static-HLS model behave consistently on real
//! compiled designs (shape properties the figures rely on).

use tapas::baseline::{self, CoreConfig};
use tapas::ir::interp::{self};
use tapas::res::{self, Board};
use tapas::{AcceleratorConfig, Toolchain};
use tapas_workloads::{fib, matrix_add, saxpy, scale_micro};

#[test]
fn alms_monotonic_in_tiles_and_work() {
    let wl = scale_micro::build(64, 10);
    let design = Toolchain::new().compile(&wl.module).unwrap();
    let mut last = 0;
    for tiles in [1usize, 2, 4, 8] {
        let cfg = AcceleratorConfig::default().with_default_tiles(tiles);
        let est = res::estimate(&design.design_info(&cfg), Board::CycloneV);
        assert!(est.alms > last, "ALMs grow with tiles");
        last = est.alms;
    }
    let big = scale_micro::build(64, 40);
    let dbig = Toolchain::new().compile(&big.module).unwrap();
    let cfg = AcceleratorConfig::default();
    assert!(
        res::estimate(&dbig.design_info(&cfg), Board::CycloneV).alms
            > res::estimate(&design.design_info(&cfg), Board::CycloneV).alms,
        "ALMs grow with per-task work"
    );
}

#[test]
fn fmax_higher_on_arria() {
    let wl = matrix_add::build(8);
    let design = Toolchain::new().compile(&wl.module).unwrap();
    let info = design.design_info(&AcceleratorConfig::default());
    let cv = res::estimate(&info, Board::CycloneV);
    let a10 = res::estimate(&info, Board::Arria10);
    assert!(a10.fmax_mhz > 1.4 * cv.fmax_mhz, "paper: ~300 vs ~150 MHz");
    assert_eq!(cv.alms, a10.alms, "same netlist, different fabric");
}

#[test]
fn power_grows_with_logic_and_clock() {
    let small = scale_micro::build(64, 1);
    let big = scale_micro::build(64, 50);
    let cfg = AcceleratorConfig::default().with_default_tiles(8);
    let ds = Toolchain::new().compile(&small.module).unwrap();
    let db = Toolchain::new().compile(&big.module).unwrap();
    let es = res::estimate(&ds.design_info(&cfg), Board::CycloneV);
    let eb = res::estimate(&db.design_info(&cfg), Board::CycloneV);
    assert!(res::power_watts(&eb, 150.0) > res::power_watts(&es, 150.0));
    assert!(res::power_watts(&es, 300.0) > res::power_watts(&es, 150.0));
    // Always far below the i7 package.
    assert!(res::power_watts(&eb, 300.0) < res::I7_PACKAGE_WATTS / 5.0);
}

#[test]
fn multicore_speedup_bounded_by_cores_and_span() {
    let wl = fib::build(14);
    let mut mem = wl.mem.clone();
    let out =
        interp::run(&wl.module, wl.func, &wl.args, &mut mem, &interp::InterpConfig::default())
            .unwrap();
    let t1 = baseline::run_multicore(&out.trace, &CoreConfig { cores: 1, ..CoreConfig::default() });
    for cores in [2usize, 4, 8] {
        let tp =
            baseline::run_multicore(&out.trace, &CoreConfig { cores, ..CoreConfig::default() });
        let speedup = t1.cycles as f64 / tp.cycles as f64;
        assert!(speedup <= cores as f64 + 1e-9, "{cores} cores: {speedup}");
        // Fine-grain tasks can regress slightly with more cores (eager
        // steals cost more than the stolen work — the paper's motivation),
        // but catastrophic slowdowns would indicate a scheduler bug.
        assert!(speedup >= 0.5, "{cores} cores: speedup collapsed to {speedup}");
    }
}

#[test]
fn coarsening_never_increases_total_work() {
    let wl = saxpy::build(512);
    let mut mem = wl.mem.clone();
    let out =
        interp::run(&wl.module, wl.func, &wl.args, &mut mem, &interp::InterpConfig::default())
            .unwrap();
    for g in [1usize, 4, 16, 64] {
        let t = baseline::coarsen_loops(&out.trace, g);
        assert_eq!(
            t.total_cost().total(),
            out.trace.total_cost().total(),
            "grainsize {g} changed work"
        );
    }
}

#[test]
fn static_hls_memory_bound_like_tapas() {
    // Both models are bound by the same streaming bandwidth on SAXPY, so
    // runtimes land within a small factor (the Table V observation).
    let n = 4096u64;
    let hls = baseline::estimate_static_hls(
        n,
        &baseline::StaticHlsConfig {
            unroll: 3,
            mem_words_per_iter: 3,
            mem_ports: 1,
            ..baseline::StaticHlsConfig::default()
        },
    );
    // 3 words/element over 1 port at realistic stream efficiency:
    // ~13-14 cycles/element, the operating point Table V implies.
    let per_elem = hls.cycles as f64 / n as f64;
    assert!(per_elem > 10.0 && per_elem < 18.0, "{per_elem}");
}

#[test]
fn spawn_latency_claim_holds_across_configs() {
    for tiles in [1usize, 2, 4] {
        let wl = scale_micro::build(128, 1);
        let design = Toolchain::new().compile(&wl.module).unwrap();
        let cfg = AcceleratorConfig { mem_bytes: 4096, ..AcceleratorConfig::default() }
            .with_default_tiles(tiles);
        let mut acc = design.instantiate(&cfg).unwrap();
        acc.mem_mut().write_bytes(0, &wl.mem);
        let out = acc.run(wl.func, &wl.args).unwrap();
        let min = out.stats.min_spawn_latency.expect("the microbenchmark spawns tasks");
        assert!((8..=14).contains(&min), "paper: ~10 cycles, got {min} at {tiles} tiles");
    }
}
