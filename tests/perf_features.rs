//! Property tests (seeded, no external frameworks) for the two opt-in
//! performance features:
//!
//! * **Steal determinism** — the same configuration replays to the same
//!   cycle count and the same steal trace, event for event.
//! * **MSHR merge soundness** — responses served through same-line miss
//!   merging are byte-identical to the same accesses served one at a
//!   time with no merging in play.
//! * **Profiler books** — `Profile::check_invariant` stays exact with the
//!   two new stall buckets (`steal-stall`, `bank-conflict`) in the sum.
//! * **Suite-wide opt-in** — with both features disabled every small-suite
//!   run is cycle-identical to the seed configuration.

use tapas::sim::SimEventKind;
use tapas::{AcceleratorConfig, ProfileLevel, StallReason, StealConfig, Toolchain};
use tapas_mem::{
    CacheConfig, DataBox, DataBoxConfig, DramConfig, MemOpKind, MemReq, MemSystem, ReqId,
};
use tapas_workloads::{fib, suite_small, BuiltWorkload};

fn run_with(
    wl: &BuiltWorkload,
    cfg: &AcceleratorConfig,
) -> (tapas::SimOutcome, tapas::Accelerator) {
    let design = Toolchain::new().compile(&wl.module).expect("compiles");
    let mut acc = design.instantiate(cfg).expect("elaborates");
    acc.mem_mut().write_bytes(0, &wl.mem);
    let out = acc.run(wl.func, &wl.args).expect("runs");
    (out, acc)
}

fn steal_cfg(wl: &BuiltWorkload, latency: u64) -> AcceleratorConfig {
    AcceleratorConfig::builder()
        .tiles(2)
        .ntasks(256)
        .mem_bytes(wl.mem.len().next_power_of_two().max(1 << 20))
        .steal(StealConfig { latency })
        .record_events(true)
        .build()
        .expect("valid config")
}

#[test]
fn steal_trace_replays_identically() {
    let wl = fib::build(10);
    let trace_of = || {
        let (out, mut acc) = run_with(&wl, &steal_cfg(&wl, 2));
        let steals: Vec<(u64, usize, usize, usize, usize)> = acc
            .take_events()
            .into_iter()
            .filter_map(|e| match e.kind {
                SimEventKind::Stolen { by, tile } => Some((e.cycle, e.unit, e.slot, by, tile)),
                _ => None,
            })
            .collect();
        (out.cycles, out.stats.steals, steals)
    };
    let (c1, s1, t1) = trace_of();
    let (c2, s2, t2) = trace_of();
    assert!(s1 > 0, "the property is vacuous unless stealing actually fired");
    assert_eq!(s1 as usize, t1.len(), "one Stolen event per counted steal");
    assert_eq!(c1, c2, "cycle count replays");
    assert_eq!(s1, s2, "steal count replays");
    assert_eq!(t1, t2, "steal trace replays event-for-event");
}

/// Drive a data box + memory system until `n` responses arrive; returns
/// `(request id, read data)` sorted by id.
fn drain(db: &mut DataBox, ms: &mut MemSystem, n: usize, from: u64) -> Vec<(u64, u64)> {
    let mut got = Vec::new();
    for now in from..from + 5000 {
        db.tick(now, ms).expect("well-formed requests");
        for r in db.pop_responses(now) {
            got.push((r.id.0, r.rdata));
        }
        if got.len() >= n {
            break;
        }
    }
    assert_eq!(got.len(), n, "all responses arrived");
    got.sort_unstable();
    got
}

#[test]
fn mshr_merged_responses_match_unmerged() {
    let pattern: Vec<u8> = (0u8..64).map(|b| b.wrapping_mul(37).wrapping_add(11)).collect();
    let reqs: Vec<MemReq> = (0..8u64)
        .map(|k| MemReq {
            id: ReqId(k),
            port: k as usize % 4,
            // Two cache lines, four words each: plenty of same-line misses
            // in flight at once.
            addr: (k % 2) * 32 + (k / 2) * 4,
            size: 4,
            kind: MemOpKind::Read,
            wdata: 0,
        })
        .collect();

    // Merged: everything in flight at once, same-line misses coalesce.
    let mut db = DataBox::new(DataBoxConfig { ports: 4, issue_width: 4, queue_depth: 8 });
    let mut ms = MemSystem::new(4096, CacheConfig::default(), DramConfig::default());
    ms.write_bytes(0, &pattern);
    for r in &reqs {
        assert!(db.enqueue(*r, 0), "queues sized for the burst");
    }
    let merged = drain(&mut db, &mut ms, reqs.len(), 0);
    assert!(ms.l1_stats().mshr_merges > 0, "the property is vacuous without a merge");

    // Unmerged: a fresh system serves the same accesses strictly one at a
    // time, so no two same-line misses ever coexist.
    let mut db = DataBox::new(DataBoxConfig { ports: 4, issue_width: 1, queue_depth: 8 });
    let mut ms = MemSystem::new(4096, CacheConfig::default(), DramConfig::default());
    ms.write_bytes(0, &pattern);
    let mut unmerged = Vec::new();
    let mut t = 0u64;
    for r in &reqs {
        assert!(db.enqueue(*r, t));
        unmerged.extend(drain(&mut db, &mut ms, 1, t));
        t += 1000;
    }
    assert_eq!(ms.l1_stats().mshr_merges, 0, "serialized accesses cannot merge");
    unmerged.sort_unstable();
    assert_eq!(merged, unmerged, "merged responses are byte-identical to unmerged");
}

#[test]
fn profiler_invariant_holds_with_both_features_on() {
    let wl = fib::build(10);
    let cfg = AcceleratorConfig {
        profile: ProfileLevel::Full,
        ..AcceleratorConfig::builder()
            .tiles(2)
            .ntasks(256)
            .mem_bytes(wl.mem.len().next_power_of_two().max(1 << 20))
            .steal(StealConfig { latency: 5 })
            .l1_banks(4)
            .build()
            .expect("valid config")
    };
    let (out, _) = run_with(&wl, &cfg);
    let p = out.profile.expect("profiling was on");
    p.check_invariant().expect("books balance with steal-stall and bank-conflict buckets");
    assert!(
        p.stall_total(StallReason::StealStall) > 0,
        "steal latency must be attributed, not lost"
    );
}

#[test]
fn disabled_features_are_cycle_identical_across_the_suite() {
    for wl in suite_small() {
        let recursive = matches!(wl.name.as_str(), "fib" | "mergesort");
        let ntasks = if recursive { 512 } else { 32 };
        let mem_bytes = wl.mem.len().next_power_of_two().max(1 << 20);
        let seed = AcceleratorConfig { ntasks, mem_bytes, ..AcceleratorConfig::default() }
            .with_default_tiles(2);
        let disabled = AcceleratorConfig::builder()
            .tiles(2)
            .ntasks(ntasks)
            .mem_bytes(mem_bytes)
            .l1_banks(1)
            .build()
            .expect("valid config");
        let (a, _) = run_with(&wl, &seed);
        let (b, _) = run_with(&wl, &disabled);
        assert_eq!(a.cycles, b.cycles, "{}: disabled features changed timing", wl.name);
        assert_eq!(a.stats.steals, 0, "{}", wl.name);
        assert_eq!(b.stats.steals, 0, "{}", wl.name);
        assert_eq!(b.stats.bank_conflicts, 0, "{}", wl.name);
    }
}
