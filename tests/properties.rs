//! Randomized (but fully deterministic) tests over the toolchain's core
//! invariants, driven by the internal `tapas_workloads::rng` PRNG so no
//! external property-testing framework is needed:
//!
//! * random straight-line arithmetic programs produce identical results on
//!   the interpreter and the cycle-level accelerator;
//! * the accelerator sorts arbitrary arrays (mergesort) and matches the
//!   host oracle on arbitrary workload parameters;
//! * the memory system's functional contents always equal a flat-memory
//!   shadow under arbitrary access sequences;
//! * the task-extraction invariants (block ownership partition, argument
//!   threading) hold on randomly-shaped loop nests.

use tapas::ir::interp::{self, Val};
use tapas::ir::{BinOp, CmpPred, FunctionBuilder, Module, Type};
use tapas::{AcceleratorConfig, Toolchain};
use tapas_mem::{CacheConfig, DramConfig, MemOpKind, MemReq, MemSystem, ReqId};
use tapas_workloads::rng::SplitMix64;

/// A little DSL of straight-line integer ops for random program generation.
#[derive(Debug, Clone)]
enum RandOp {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Xor(usize, usize),
    Shl(usize, u8),
    CmpSelect(usize, usize),
}

fn rand_op(r: &mut SplitMix64) -> RandOp {
    let a = r.next_below(8) as usize;
    let b = r.next_below(8) as usize;
    match r.next_below(6) {
        0 => RandOp::Add(a, b),
        1 => RandOp::Sub(a, b),
        2 => RandOp::Mul(a, b),
        3 => RandOp::Xor(a, b),
        4 => RandOp::Shl(a, r.next_below(31) as u8),
        _ => RandOp::CmpSelect(a, b),
    }
}

fn rand_ops(r: &mut SplitMix64, min: u64, max: u64) -> Vec<RandOp> {
    let len = min + r.next_below(max - min);
    (0..len).map(|_| rand_op(r)).collect()
}

/// Build a function computing a chain of random ops over two params plus
/// memory traffic: loads seed the value pool, the result is stored + returned.
fn build_random_program(ops: &[RandOp]) -> (Module, tapas::ir::FuncId) {
    let mut b =
        FunctionBuilder::new("rand", vec![Type::ptr(Type::I32), Type::I32, Type::I32], Type::I32);
    let (p, x, y) = (b.param(0), b.param(1), b.param(2));
    let zero = b.const_int(Type::I64, 0);
    let one64 = b.const_int(Type::I64, 1);
    let p0 = b.gep_index(p, zero);
    let p1 = b.gep_index(p, one64);
    let m0 = b.load(p0);
    let m1 = b.load(p1);
    let mut pool = vec![x, y, m0, m1];
    for op in ops {
        let pick = |i: usize, pool: &Vec<_>| pool[i % pool.len()];
        let v = match op {
            RandOp::Add(a, c) => {
                let (l, r) = (pick(*a, &pool), pick(*c, &pool));
                b.add(l, r)
            }
            RandOp::Sub(a, c) => {
                let (l, r) = (pick(*a, &pool), pick(*c, &pool));
                b.sub(l, r)
            }
            RandOp::Mul(a, c) => {
                let (l, r) = (pick(*a, &pool), pick(*c, &pool));
                b.mul(l, r)
            }
            RandOp::Xor(a, c) => {
                let (l, r) = (pick(*a, &pool), pick(*c, &pool));
                b.bin(BinOp::Xor, l, r)
            }
            RandOp::Shl(a, s) => {
                let l = pick(*a, &pool);
                let sh = b.const_int(Type::I32, i64::from(*s % 31));
                b.shl(l, sh)
            }
            RandOp::CmpSelect(a, c) => {
                let (l, r) = (pick(*a, &pool), pick(*c, &pool));
                let cond = b.icmp(CmpPred::Slt, l, r);
                b.select(cond, l, r)
            }
        };
        pool.push(v);
    }
    let result = *pool.last().unwrap();
    b.store(p0, result);
    b.ret(Some(result));
    let mut m = Module::new("rand");
    let f = m.add_function(b.finish());
    (m, f)
}

/// Evaluate the random-op DSL directly in Rust (oracle for roundtrips).
fn oracle_eval(ops: &[RandOp], x: i32, y: i32, m0: i32, m1: i32) -> i32 {
    let mut pool: Vec<i32> = vec![x, y, m0, m1];
    for op in ops {
        let pick = |i: usize, pool: &Vec<i32>| pool[i % pool.len()];
        let v = match op {
            RandOp::Add(a, c) => pick(*a, &pool).wrapping_add(pick(*c, &pool)),
            RandOp::Sub(a, c) => pick(*a, &pool).wrapping_sub(pick(*c, &pool)),
            RandOp::Mul(a, c) => pick(*a, &pool).wrapping_mul(pick(*c, &pool)),
            RandOp::Xor(a, c) => pick(*a, &pool) ^ pick(*c, &pool),
            RandOp::Shl(a, s) => pick(*a, &pool).wrapping_shl(u32::from(*s % 31)),
            RandOp::CmpSelect(a, c) => {
                let (l, r) = (pick(*a, &pool), pick(*c, &pool));
                if l < r {
                    l
                } else {
                    r
                }
            }
        };
        pool.push(v);
    }
    *pool.last().unwrap()
}

#[test]
fn random_straightline_program_sim_equals_interp() {
    let mut r = SplitMix64::new(0x5eed_0001);
    for _ in 0..48 {
        let ops = rand_ops(&mut r, 1, 24);
        let (x, y, m0, m1) = (r.next_i32(), r.next_i32(), r.next_i32(), r.next_i32());
        let (module, f) = build_random_program(&ops);
        tapas::ir::verify_module(&module).unwrap();
        let mut mem = Vec::new();
        mem.extend_from_slice(&m0.to_le_bytes());
        mem.extend_from_slice(&m1.to_le_bytes());
        let args = [Val::Int(0), Val::Int(x as u32 as u64), Val::Int(y as u32 as u64)];

        let mut gold_mem = mem.clone();
        let gold = interp::run(&module, f, &args, &mut gold_mem, &interp::InterpConfig::default())
            .unwrap();

        let design = Toolchain::new().compile(&module).unwrap();
        let cfg = AcceleratorConfig { mem_bytes: 4096, ..AcceleratorConfig::default() };
        let mut acc = design.instantiate(&cfg).unwrap();
        acc.mem_mut().write_bytes(0, &mem);
        let out = acc.run(f, &args).unwrap();

        assert_eq!(out.ret, gold.ret, "ops: {ops:?}");
        assert_eq!(acc.mem().read_bytes(0, 8), &gold_mem[..], "ops: {ops:?}");
    }
}

#[test]
fn stall_attribution_balances_on_random_programs() {
    use tapas::ProfileLevel;
    let mut r = SplitMix64::new(0x5eed_0009);
    for round in 0..24 {
        let ops = rand_ops(&mut r, 1, 24);
        let (module, f) = build_random_program(&ops);
        let (x, y) = (r.next_i32(), r.next_i32());
        let args = [Val::Int(0), Val::Int(x as u32 as u64), Val::Int(y as u32 as u64)];
        let design = Toolchain::new().compile(&module).unwrap();
        let cfg = tapas::AcceleratorConfig::builder()
            .mem_bytes(4096)
            .profile(ProfileLevel::Full)
            .build()
            .unwrap();
        let mut acc = design.instantiate(&cfg).unwrap();
        acc.mem_mut().write_bytes(0, &[0u8; 8]);
        let out = acc.run(f, &args).unwrap();
        let p = out.profile.expect("profiling was on");
        p.check_invariant().unwrap_or_else(|e| panic!("round {round}, ops {ops:?}: {e}"));
        assert_eq!(p.cycles, out.cycles, "round {round}");
        assert_eq!(
            p.attributed_cycles(),
            p.cycles * p.tile_count() as u64,
            "round {round}: every tile-cycle charged exactly once"
        );
    }
}

#[test]
fn accelerator_sorts_arbitrary_arrays() {
    let mut r = SplitMix64::new(0x5eed_0002);
    for _ in 0..12 {
        let n = 2 + r.next_below(62);
        let seed = r.next_u64();
        let wl = tapas_workloads::mergesort::build(n, seed);
        let design = Toolchain::new().compile(&wl.module).unwrap();
        let cfg = AcceleratorConfig {
            ntasks: 256,
            mem_bytes: wl.mem.len().max(4096),
            ..AcceleratorConfig::default()
        }
        .with_default_tiles(2);
        let mut acc = design.instantiate(&cfg).unwrap();
        acc.mem_mut().write_bytes(0, &wl.mem);
        acc.run(wl.func, &wl.args).unwrap();
        let want = tapas_workloads::mergesort::expected(n, seed);
        assert_eq!(
            acc.mem().read_bytes(wl.output.0, wl.output.1),
            want.as_slice(),
            "n={n} seed={seed}"
        );
    }
}

#[test]
fn dedup_oracle_holds_for_arbitrary_shapes() {
    let mut r = SplitMix64::new(0x5eed_0003);
    for _ in 0..24 {
        let nchunks = 1 + r.next_below(31);
        let chunk_len = 4 + r.next_below(20);
        let wl = tapas_workloads::dedup::build(nchunks, chunk_len);
        let mem = wl.golden_memory();
        let want = tapas_workloads::dedup::expected(nchunks, chunk_len);
        assert_eq!(wl.output_of(&mem), want.as_slice(), "nchunks={nchunks} chunk_len={chunk_len}");
    }
}

#[test]
fn memory_system_matches_flat_shadow() {
    let mut r = SplitMix64::new(0x5eed_0004);
    for _ in 0..32 {
        let len = 1 + r.next_below(63);
        let accesses: Vec<(u64, bool, u32)> =
            (0..len).map(|_| (r.next_below(64), r.chance(1, 2), r.next_u64() as u32)).collect();
        let mut ms = MemSystem::new(256, CacheConfig::default(), DramConfig::default());
        let mut shadow = vec![0u8; 256];
        let mut now = 0u64;
        for (i, (slot, is_write, data)) in accesses.iter().enumerate() {
            let addr = slot * 4;
            let kind = if *is_write { MemOpKind::Write } else { MemOpKind::Read };
            let req = MemReq {
                id: ReqId(i as u64),
                port: 0,
                addr,
                size: 4,
                kind,
                wdata: u64::from(*data),
            };
            // retry until the cache accepts
            let done = loop {
                match ms.issue(req, now).expect("well-formed request") {
                    Some(d) => break d,
                    None => now += 1,
                }
            };
            if *is_write {
                shadow[addr as usize..addr as usize + 4].copy_from_slice(&data.to_le_bytes());
            } else {
                let got =
                    ms.pop_ready(done).into_iter().find(|r| r.id == req.id).expect("response");
                let want = u32::from_le_bytes(
                    shadow[addr as usize..addr as usize + 4].try_into().unwrap(),
                );
                assert_eq!(got.rdata as u32, want);
            }
            now = done;
        }
        assert_eq!(&ms.data[..], &shadow[..]);
    }
}

#[test]
fn scale_micro_oracle_for_any_parameters() {
    let mut r = SplitMix64::new(0x5eed_0005);
    for _ in 0..24 {
        let n = 1 + r.next_below(127);
        let adders = 1 + r.next_below(39) as u32;
        let wl = tapas_workloads::scale_micro::build(n, adders);
        let mem = wl.golden_memory();
        let want = tapas_workloads::scale_micro::expected(n, adders);
        assert_eq!(wl.output_of(&mem), want.as_slice(), "n={n} adders={adders}");
    }
}

#[test]
fn task_extraction_partitions_blocks() {
    for depth in 1usize..4 {
        // loop nests of varying depth: every block owned exactly once.
        let mut b = FunctionBuilder::new("nest", vec![Type::ptr(Type::I32), Type::I64], Type::Void);
        let (p, n) = (b.param(0), b.param(1));
        fn emit_level(
            b: &mut FunctionBuilder,
            p: tapas::ir::ValueId,
            n: tapas::ir::ValueId,
            level: usize,
        ) {
            let zero = b.const_int(Type::I64, 0);
            tapas_workloads::loops::cilk_for(b, zero, n, |b, i| {
                if level > 1 {
                    emit_level(b, p, n, level - 1);
                } else {
                    let q = b.gep_index(p, i);
                    let v = b.load(q);
                    let one = b.const_int(Type::I32, 1);
                    let v2 = b.add(v, one);
                    b.store(q, v2);
                }
            });
        }
        emit_level(&mut b, p, n, depth);
        b.ret(None);
        let mut m = Module::new("m");
        let f = m.add_function(b.finish());
        tapas::ir::verify_module(&m).unwrap();
        let tg = tapas::task::extract_tasks(&m, f).unwrap();
        assert_eq!(tg.num_tasks(), depth + 1);
        let func = m.function(f);
        let owned: usize = tg.task_ids().map(|t| tg.task(t).blocks.len()).sum();
        assert_eq!(owned, func.num_blocks());
        // deepest task carries the pointer through every level
        let deepest = tg.task(tapas::task::TaskId(depth as u32));
        assert!(deepest.args.len() >= 2);
    }
}

#[test]
fn random_program_survives_text_roundtrip_and_optimizer() {
    use tapas::ir::{opt, printer, text};
    let mut r = SplitMix64::new(0x5eed_0006);
    for _ in 0..48 {
        let ops = rand_ops(&mut r, 1, 16);
        let (x, y, m0, m1) = (r.next_i32(), r.next_i32(), r.next_i32(), r.next_i32());
        let (module, _) = build_random_program(&ops);
        let expected = oracle_eval(&ops, x, y, m0, m1);
        let args = [Val::Int(0), Val::Int(x as u32 as u64), Val::Int(y as u32 as u64)];
        let mut mem = Vec::new();
        mem.extend_from_slice(&m0.to_le_bytes());
        mem.extend_from_slice(&m1.to_le_bytes());

        // 1) text roundtrip
        let m2 = text::parse_module(&printer::print_module(&module)).unwrap();
        tapas::ir::verify_module(&m2).unwrap();
        // 2) optimize the roundtripped module
        let mut m3 = m2.clone();
        opt::optimize_module(&mut m3);
        tapas::ir::verify_module(&m3).unwrap();

        for m in [&m2, &m3] {
            let f = m.function_by_name("rand").unwrap();
            let mut mm = mem.clone();
            let out = interp::run(m, f, &args, &mut mm, &interp::InterpConfig::default()).unwrap();
            assert_eq!(out.ret, Some(Val::Int(expected as u32 as u64)), "ops: {ops:?}");
        }
    }
}

#[test]
fn frontend_expressions_match_oracle() {
    let mut r = SplitMix64::new(0x5eed_0007);
    for _ in 0..48 {
        let a = r.next_in_range(-1000, 999);
        let b = r.next_in_range(1, 999);
        let c = r.next_in_range(-1000, 999);
        // compile a source-level expression and compare with native eval
        let src = "fn f(a: i64, b: i64, c: i64) -> i64 {
                 return (a + b) * c - a / b + (c % b);
             }";
        let m = tapas::lang::compile(src).unwrap();
        let f = m.function_by_name("f").unwrap();
        let mut mem = Vec::new();
        let out = interp::run(
            &m,
            f,
            &[Val::Int(a as u64), Val::Int(b as u64), Val::Int(c as u64)],
            &mut mem,
            &interp::InterpConfig::default(),
        )
        .unwrap();
        let expected = (a.wrapping_add(b))
            .wrapping_mul(c)
            .wrapping_sub(a.wrapping_div(b))
            .wrapping_add(c.wrapping_rem(b));
        assert_eq!(out.ret, Some(Val::Int(expected as u64)), "a={a} b={b} c={c}");
    }
}

#[test]
fn elision_preserves_random_parallel_increments() {
    use tapas::ir::transform;
    let mut r = SplitMix64::new(0x5eed_0008);
    for _ in 0..8 {
        let n = 1 + r.next_below(47);
        let wl = tapas_workloads::scale_micro::build(n, 7);
        let mut m = wl.module.clone();
        let f = m.function_by_name("scale").unwrap();
        let count = transform::elide_detaches(&mut m, f, None);
        assert_eq!(count, 1);
        tapas::ir::verify_module(&m).unwrap();
        let mut mem = wl.mem.clone();
        interp::run(&m, f, &wl.args, &mut mem, &interp::InterpConfig::default()).unwrap();
        let want = tapas_workloads::scale_micro::expected(n, 7);
        assert_eq!(wl.output_of(&mem), want.as_slice(), "n={n}");
    }
}
